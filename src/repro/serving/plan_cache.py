"""The canonical plan cache: amortize plan generation across queries.

The paper's expensive, capability-sensitive step is plan *generation*
(Sections 5-6): GenCompact walks the rewrite space, marks the condition
tree against the source grammar and searches sub-plan combinations --
milliseconds of CPU per query, against microseconds to re-execute a
known plan.  A serving mediator sees the same logical query over and
over (dashboards, page reloads, API clients), so the highest-leverage
optimization is to plan once and replay.

Two ideas make the cache *canonical* rather than textual:

* **Canonical keys.**  Condition trees are order-sensitive by design
  (``a AND b`` != ``b AND a`` structurally), but they are *logically*
  interchangeable as target queries -- any feasible plan for one
  answers the other with the identical row set.  :func:`canonical_key`
  therefore flattens the tree (:func:`~repro.conditions.canonical
  .canonicalize`), sorts the children of every connector into a
  deterministic order and drops duplicate siblings, so every commuted /
  reassociated / sibling-duplicated variant of a condition maps to one
  cache entry.  The *plan* stored under the key was generated for the
  first variant seen; executing it is correct for all of them because
  plans are fixed per source query at execution time and the row
  semantics of AND/OR are order-free.

* **Versioned entries.**  A plan is only as good as the catalog it was
  generated against: registering a source (or mutating one) can change
  feasibility and costs.  Every entry records the catalog version it
  was planned under; a lookup with a newer version drops the entry and
  counts an ``invalidation`` -- stale plans can never be served.

The cache is a thread-safe LRU bounded by entry count (plans are tiny;
counting entries, not tuples, is the right budget).  Hits, misses,
invalidations and evictions feed both local stats and the process-wide
:class:`~repro.observability.metrics.MetricsRegistry` under
``<prefix>.hits`` / ``.misses`` / ``.invalidations`` / ``.evictions``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Hashable

from repro.conditions.canonical import canonicalize
from repro.conditions.skeleton import (
    Skeleton,
    atom_substitution,
    substitute_plan,
)
from repro.conditions.tree import Condition
from repro.observability.metrics import get_metrics
from repro.query import TargetQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.planners.base import PlanningResult
    from repro.plans.cost import CostModel
    from repro.source.source import CapabilitySource


def canonical_key(condition: Condition) -> Hashable:
    """An order-insensitive structural key for a condition tree.

    Equivalent-by-commutation/reassociation trees (everything
    :func:`~repro.conditions.rewrite.commutative_rule` and
    :func:`~repro.conditions.rewrite.associative_rule` can reach) map
    to the same key: the tree is canonicalized (same-kind connectors
    flattened), then every connector's child keys are sorted into a
    deterministic order and deduplicated (AND/OR are idempotent).
    """
    condition = canonicalize(condition)
    return _node_key(condition)


def _node_key(node: Condition) -> Hashable:
    if not node.children:
        # Leaf or TRUE: the node's own structural identity.
        return node._key()
    child_keys = sorted(
        (_node_key(child) for child in node.children), key=repr
    )
    unique: list[Hashable] = []
    for key in child_keys:
        if not unique or key != unique[-1]:
            unique.append(key)
    if len(unique) == 1:
        return unique[0]
    kind = "and" if node.is_and else "or"
    return (kind, tuple(unique))


def plan_cache_key(query: TargetQuery) -> Hashable:
    """The cache key for a target query: source x canonical condition x
    projection.  Equivalent rewritings of the same query collide; any
    difference in source or projected attributes does not."""
    return (query.source, canonical_key(query.condition), query.attributes)


@dataclass
class PlanCacheStats:
    """Local hit/miss/invalidation/eviction counters (one cache's view;
    the registry aggregates across caches sharing a prefix)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A thread-safe LRU of planning results keyed by canonical keys.

    Values are opaque (the mediator stores
    :class:`~repro.planners.base.PlanningResult`, the wrapper also
    stores template tuples); the cache owns keys, versions, eviction and
    accounting.  A ``get`` with a catalog version newer than the
    entry's drops the entry and reports a miss -- the *invalidation*
    path that ``Mediator.add_source`` relies on.
    """

    def __init__(self, max_entries: int = 256,
                 metrics_prefix: str = "serving.plan_cache"):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.metrics_prefix = metrics_prefix
        self._entries: OrderedDict[Hashable, tuple[int, Any]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _count(self, event: str) -> None:
        get_metrics().counter(f"{self.metrics_prefix}.{event}").inc()

    # ------------------------------------------------------------------
    def get(self, key: Hashable, version: int = 0) -> Any | None:
        """The cached value for ``key`` at ``version``, or ``None``.

        An entry stored under an older catalog version is removed and
        counted as an invalidation (plus the miss the caller sees).
        """
        invalidated = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] != version:
                del self._entries[key]
                self.stats.invalidations += 1
                invalidated = True
                entry = None
            if entry is None:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if invalidated:
            self._count("invalidations")
        if entry is None:
            self._count("misses")
            return None
        self._count("hits")
        return entry[1]

    def put(self, key: Hashable, value: Any, version: int = 0) -> None:
        """Store ``value`` under ``key`` at ``version`` (LRU-evicting)."""
        evictions = 0
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = (version, value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evictions += 1
        for _ in range(evictions):
            self._count("evictions")

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped.

        Bulk invalidation (catalog reloaded, cache poisoned in a test)
        counts each dropped entry, same as the lazy per-get path.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
        for _ in range(dropped):
            self._count("invalidations")
        return dropped


# ----------------------------------------------------------------------
# Parameterized plan templates: constant-stripped skeleton keys
# ----------------------------------------------------------------------

def template_cache_key(
    condition: Condition,
    attributes: frozenset[str],
    source: str,
    scheme: str = "",
) -> Hashable:
    """The template key: the *constant-stripped* skeleton of a query.

    Exact canonical keys collide only when conditions are structurally
    equivalent, constants included; real traffic respells one query
    shape with thousands of different constants (``make = 'BMW'`` now,
    ``make = 'Audi'`` next).  SSDL templates usually admit constant
    *classes*, so all those instances share one feasible plan shape --
    the view-template idea.  Keying on
    :class:`~repro.conditions.skeleton.Skeleton` (values replaced by
    class markers) lets every constant-varying respelling of a planned
    query hit the same template entry.
    """
    return (source, Skeleton.of(condition).template, attributes, scheme)


class PlanTemplates:
    """Plans with constant slots: rebind constants on every hit.

    A thin layer over :class:`PlanCache` (same LRU, versioning, metrics
    and thread-safety) storing ``(condition, PlanningResult)`` pairs
    keyed by :func:`template_cache_key`.  :meth:`instantiate` rebinds a
    stored plan to a new constant vector and **re-validates every source
    query** against the source description before serving it -- literal
    templates (``style = 'sedan'``) make support value-dependent, so an
    unvalidated substitution could hand the source a query it rejects.
    With compiled capabilities the validation is a token walk, which is
    what makes a template hit land near an exact canonical hit.

    ``hits`` counts served instantiations, ``rejected`` counts lookups
    whose substitution failed validation (the caller replans); both are
    mirrored to ``<prefix>.template_hits`` / ``.template_rejected``.
    """

    def __init__(self, max_entries: int = 256,
                 metrics_prefix: str = "serving.template_cache"):
        self._cache = PlanCache(max_entries, metrics_prefix=metrics_prefix)
        self.metrics_prefix = metrics_prefix
        self._lock = threading.Lock()
        #: Plans served by rebinding a template's constants.
        self.hits = 0
        #: Template entries found but unusable for the new constants.
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def stats(self) -> PlanCacheStats:
        """The underlying LRU's hit/miss/invalidation/eviction view."""
        return self._cache.stats

    def key(self, query: TargetQuery, scheme: str = "") -> Hashable:
        return template_cache_key(
            query.condition, query.attributes, query.source, scheme
        )

    # ------------------------------------------------------------------
    def store(self, key: Hashable, condition: Condition,
              result: "PlanningResult", version: int = 0) -> None:
        """Remember a freshly planned result as the template for its
        skeleton (first feasible plan wins; later instances rebind it)."""
        if result.plan is None:
            return
        if self._cache.get(key, version) is None:
            self._cache.put(key, (condition, result), version)

    def instantiate(
        self,
        key: Hashable,
        query: TargetQuery,
        source: "CapabilitySource",
        cost_model: "CostModel",
        version: int = 0,
    ) -> "PlanningResult | None":
        """A plan for ``query`` rebound from a same-skeleton template.

        Returns None (after counting the miss or rejection) when no
        usable template exists -- the caller runs the planner.
        """
        entry = self._cache.get(key, version)
        if entry is None:
            return None
        old_condition, old_result = entry
        mapping = atom_substitution(old_condition, query.condition)
        if mapping is None or old_result.plan is None:
            self._reject()
            return None
        candidate = substitute_plan(old_result.plan, mapping)
        # Re-validate: literal templates make support value-dependent.
        for source_query in candidate.source_queries():
            if not source.supports(source_query.condition, source_query.attrs):
                self._reject()
                return None
        from repro.planners.base import PlanningResult

        with self._lock:
            self.hits += 1
        get_metrics().counter(f"{self.metrics_prefix}.template_hits").inc()
        return PlanningResult(
            planner=f"{old_result.planner}+template",
            query=query,
            plan=candidate,
            cost=cost_model.cost(candidate),
        )

    def _reject(self) -> None:
        with self._lock:
            self.rejected += 1
        get_metrics().counter(f"{self.metrics_prefix}.template_rejected").inc()

    def invalidate(self) -> int:
        return self._cache.invalidate()
