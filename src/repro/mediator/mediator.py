"""The mediator facade: register sources, plan and execute target queries.

This is the top of the paper's architecture: target queries "are
submitted to a mediator that generates and executes query plans that
respect the limitations of the source" (Section 3).  The default
plan-generation scheme is GenCompact.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.conditions.simplify import is_definitely_unsatisfiable
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import InfeasiblePlanError, PlanExecutionError
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    get_metrics,
)
from repro.observability.trace import Tracer, get_tracer, use_tracer
from repro.planners.base import Planner, PlannerStats, PlanningResult
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.plans.execute import ExecutionReport, Executor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery, parse_query
from repro.source.source import CapabilitySource


@dataclass
class MediatorAnswer:
    """Everything the mediator knows about one answered query."""

    query: TargetQuery
    planning: PlanningResult
    report: ExecutionReport

    @property
    def rows(self) -> list[dict]:
        return self.report.result.rows

    @property
    def result(self) -> Relation:
        return self.report.result


class Mediator:
    """Holds a catalog of capability-limited sources and answers queries."""

    def __init__(
        self,
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        short_circuit_unsatisfiable: bool = True,
        result_cache_tuples: int | None = None,
        retry_policy: RetryPolicy | None = None,
        parallel_workers: int | None = None,
        executor: str | None = None,
        async_coalesce: bool = True,
        async_batch_window: float | None = None,
        plan_cache_entries: int | None = None,
        plan_templates: bool = True,
        compile_capabilities: bool = True,
        minimal_answers: bool = False,
        max_in_flight: int | None = None,
        admission_timeout: float = 1.0,
        latency_objective: float | None = None,
        slo_target: float = 0.99,
        slow_query_log_entries: int = 128,
        exemplar_slots: int = 4,
        event_log_entries: int | None = None,
        event_log_path=None,
    ):
        """``short_circuit_unsatisfiable`` answers provably empty queries
        (e.g. ``price < 10 and price > 20``) locally, without planning or
        contacting the source.  ``result_cache_tuples`` enables an LRU
        source-query result cache bounded by that many cached tuples.
        ``retry_policy`` makes the mediator's executor retry transient
        source failures (capability rejections are never retried).
        ``parallel_workers`` executes plans on a
        :class:`~repro.plans.parallel.ParallelExecutor` with that many
        worker threads (``None`` = the serial executor).

        ``executor`` names the *default* execution engine --
        ``"serial"``, ``"parallel"`` or ``"async"`` -- overriding the
        ``parallel_workers`` inference; every :meth:`ask` can still
        pick per call with ``ask(..., executor=...)`` (the engines are
        built lazily and share the catalog, result cache and retry
        policy, so switching engines never changes answers).  The
        async engine runs source calls as tasks on one event-loop
        thread with single-flight coalescing (``async_coalesce``) and
        optional disjunct batching (``async_batch_window`` seconds);
        call :meth:`close` -- or use the mediator as a context manager
        -- to stop its loop thread.

        Serving knobs: ``plan_cache_entries`` enables the canonical
        :class:`~repro.serving.PlanCache` -- equivalent rewritings of a
        query share one planned entry, invalidated whenever the catalog
        changes -- and (with ``plan_templates``, the default) the
        :class:`~repro.serving.PlanTemplates` store behind it: an exact
        miss first tries to *rebind* the plan of a previously planned
        query with the same constant-stripped skeleton, so
        constant-varying respellings of one query shape cost a
        validated substitution instead of a planning run.
        ``compile_capabilities`` (default on) compiles every registered
        source's SSDL grammars into token-trie recognizers at
        :meth:`add_source` time -- the offline knowledge-compilation
        step that turns each planner ``Check`` into a token walk --
        and recompiles them (lazily, exactly like plan-cache entries)
        whenever the catalog version moves.  ``minimal_answers``
        (default off) prunes provably subsumed Union branches from
        every plan right before execution
        (:func:`~repro.plans.minimal.prune_subsumed`, per Johnson's
        minimal-answers observation): the answer row set is identical,
        but redundant branches stop costing source round-trips.
        Pruning is per-ask because the subsumption proof depends on the
        bound constants -- cached plans and templates stay unpruned.
        ``max_in_flight`` bounds
        concurrent :meth:`ask` calls
        with an :class:`~repro.serving.AdmissionController` that sheds
        excess load via :class:`~repro.errors.OverloadError` after
        ``admission_timeout`` seconds of queueing (never deadlocks;
        parallel-executor fan-out happens *inside* one admitted
        request and does not consume slots).

        Telemetry knobs: ``latency_objective`` (seconds) arms the SLO
        machinery -- every :meth:`ask` is timed into a bucketed
        latency histogram with the objective as an exact boundary, an
        :class:`~repro.observability.slo.SLOTracker` computes
        error-budget burn against ``slo_target`` (the intended
        attainment fraction), and any ask past the objective lands in
        the bounded :class:`~repro.observability.slo.SlowQueryLog`
        (``slow_query_log_entries`` deep) with its canonical plan
        fingerprint, per-source meter deltas and -- when a recording
        tracer is installed -- the rendered span timeline.  The ask
        latency histogram keeps ``exemplar_slots`` exemplars: the
        (trace id, latency) of recent extreme asks, exported in
        OpenMetrics exemplar syntax so a scraper can jump from a
        latency bucket to the exact trace; traces an exemplar points
        at are pinned in a :class:`SamplingTracer` so the link never
        dangles.

        ``event_log_entries`` arms the **wide-event request log**
        (see :mod:`repro.observability.events`): one structured
        :class:`~repro.observability.events.AskEvent` per :meth:`ask`
        -- trace id, plan fingerprint, planning outcome, per-source
        tallies, coalesced/batched hits, latency and outcome -- in a
        bounded ring that deep, optionally mirrored to the JSONL file
        ``event_log_path`` (a path alone also arms it)."""
        self.planner = planner if planner is not None else GenCompact()
        self.k1 = k1
        self.k2 = k2
        self.short_circuit_unsatisfiable = short_circuit_unsatisfiable
        self.catalog: dict[str, CapabilitySource] = {}
        self._catalog_lock = threading.Lock()
        #: Bumped by every catalog mutation; versions plan-cache entries.
        self.catalog_version = 0
        self.plan_cache = None
        self.plan_templates = None
        if plan_cache_entries is not None:
            from repro.serving.plan_cache import PlanCache, PlanTemplates

            self.plan_cache = PlanCache(plan_cache_entries)
            if plan_templates:
                self.plan_templates = PlanTemplates(plan_cache_entries)
        self.compile_capabilities = compile_capabilities
        self.minimal_answers = minimal_answers
        #: Catalog version each source's compiled grammars are current
        #: at; a version bump lazily triggers recompilation, exactly
        #: like the plan cache's versioned entries.
        self._compiled_versions: dict[str, int] = {}
        self.admission = None
        if max_in_flight is not None:
            from repro.serving.admission import AdmissionController

            self.admission = AdmissionController(
                max_in_flight, queue_timeout=admission_timeout
            )
        self.slo = None
        self.slow_queries = None
        self.ask_latency: Histogram | None = None
        self.latency_objective = latency_objective
        if latency_objective is not None:
            from repro.observability.slo import SLOTracker, SlowQueryLog

            # A mediator-local histogram so the objective is always one
            # of the boundaries (exact SLO accounting), whatever the
            # process-wide "mediator.ask_seconds" was created with.
            self.ask_latency = Histogram(
                "mediator.ask_seconds",
                buckets=sorted(set(DEFAULT_BUCKETS) | {latency_objective}),
                exemplar_slots=exemplar_slots,
            )
            self.slo = SLOTracker(self.ask_latency, latency_objective,
                                  target=slo_target)
            self.slow_queries = SlowQueryLog(slow_query_log_entries)
        self.events = None
        if event_log_entries is not None or event_log_path is not None:
            from repro.observability.events import EventLog

            self.events = EventLog(
                capacity=event_log_entries or 256, path=event_log_path
            )
        #: Per-thread planning-outcome scratch: :meth:`plan` happens on
        #: the asking thread (with every engine, async included), so a
        #: thread-local is enough to hand the plan-cache outcome to the
        #: ask's wide event without threading it through return values.
        self._ask_scratch = threading.local()
        self.result_cache = None
        if result_cache_tuples is not None:
            from repro.plans.cache import ResultCache

            self.result_cache = ResultCache(result_cache_tuples)
        self.retry_policy = retry_policy
        self.parallel_workers = parallel_workers
        self.async_coalesce = async_coalesce
        self.async_batch_window = async_batch_window
        #: Lazily built engines, keyed "serial" | "parallel" | "async";
        #: all share the live catalog, result cache and retry policy.
        self._executors: dict[str, Executor] = {}
        if executor is None:
            executor = "serial" if parallel_workers is None else "parallel"
        self._executor = self._executor_for(executor)

    _EXECUTORS = ("serial", "parallel", "async")

    def _executor_for(self, choice: str | None) -> Executor:
        """The engine for one ask (``None`` = the mediator's default)."""
        if choice is None:
            return self._executor
        if choice not in self._EXECUTORS:
            raise PlanExecutionError(
                f"unknown executor {choice!r}; pick one of "
                f"{', '.join(self._EXECUTORS)}"
            )
        engine = self._executors.get(choice)
        if engine is None:
            if choice == "serial":
                engine = Executor(
                    self.catalog, cache=self.result_cache,
                    retry_policy=self.retry_policy,
                )
            elif choice == "parallel":
                from repro.plans.parallel import ParallelExecutor

                engine = ParallelExecutor(
                    self.catalog, cache=self.result_cache,
                    retry_policy=self.retry_policy,
                    max_workers=self.parallel_workers or 8,
                )
            else:
                from repro.plans.async_exec import AsyncExecutor

                engine = AsyncExecutor(
                    self.catalog, cache=self.result_cache,
                    retry_policy=self.retry_policy,
                    coalesce=self.async_coalesce,
                    batch_window=self.async_batch_window,
                )
            self._executors[choice] = engine
        return engine

    def close(self) -> None:
        """Release engine resources (worker pools, the async loop
        thread).  Idempotent; the mediator remains usable -- engines
        are rebuilt lazily on the next ask."""
        engines, self._executors = self._executors, {}
        for engine in engines.values():
            closer = getattr(engine, "close", None)
            if closer is not None:
                closer()
        if self.events is not None:
            self.events.close()
        # The default engine is always registered in _executors, so it
        # was closed above; rebuild it lazily via the same registry.
        if self._executor in engines.values():
            name = next(
                name for name, engine in engines.items()
                if engine is self._executor
            )
            self._executor = self._executor_for(name)

    def __enter__(self) -> "Mediator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def add_source(self, source: CapabilitySource) -> None:
        """Register a source (its name becomes its FROM-clause name).

        Bumps the catalog version: plans were generated against the old
        catalog's statistics and capabilities, so every cached plan is
        (lazily) invalidated.  With ``compile_capabilities`` the
        source's grammars are compiled here, at registration time --
        the paper's build-the-parser-at-integration-time step taken to
        its knowledge-compilation conclusion."""
        with self._catalog_lock:
            if source.name in self.catalog:
                raise PlanExecutionError(
                    f"a source named {source.name!r} already exists"
                )
            self.catalog[source.name] = source
        self.bump_catalog()
        if self.compile_capabilities:
            self._ensure_compiled(source)

    def remove_source(self, name: str) -> CapabilitySource:
        """Deregister a source (it left the federation).  Eager.

        The catalog version bump already guarantees no *versioned*
        cache can serve a plan touching the departed source, but lazy
        invalidation leaves its entries (and its compiled grammars)
        resident until each key happens to be looked up again.
        Removal drops all of it now: the plan cache and the template
        store are emptied, the source's compiled recognizers are
        discarded, and its compiled-version bookkeeping is forgotten --
        a removed source can never be queried from a cached or
        template-rebound plan, and holds no derived state either.

        Returns the removed source (callers re-registering it later
        must go through :meth:`add_source` again).
        """
        with self._catalog_lock:
            source = self.catalog.pop(name, None)
            if source is None:
                raise PlanExecutionError(f"unknown source {name!r}")
            self._compiled_versions.pop(name, None)
        self.bump_catalog()
        source.invalidate_compiled()
        if self.plan_cache is not None:
            self.plan_cache.invalidate()
        if self.plan_templates is not None:
            self.plan_templates.invalidate()
        get_metrics().counter("mediator.sources_removed").inc()
        return source

    def mutate_source(
        self,
        name: str,
        description,
        order_insensitive: bool | None = None,
    ) -> CapabilitySource:
        """Capability drift: a registered source changed its form.

        Swaps the source's SSDL description
        (:meth:`~repro.source.source.CapabilitySource
        .replace_description`), bumps the catalog version -- so every
        cached plan and template built against the old grammar is
        invalidated -- and, with ``compile_capabilities``, recompiles
        the new grammars eagerly so the next ask pays a token walk,
        not a compilation.
        """
        source = self.source(name)
        source.replace_description(description,
                                   order_insensitive=order_insensitive)
        self.bump_catalog()
        if self.compile_capabilities:
            self._ensure_compiled(source)
        get_metrics().counter("mediator.sources_mutated").inc()
        return source

    def _ensure_compiled(self, source: CapabilitySource) -> None:
        """(Re)compile a source's grammars if the catalog moved since
        they were last compiled -- the compiled-form analogue of the
        plan cache's versioned invalidation."""
        version = self.catalog_version
        if self._compiled_versions.get(source.name) == version:
            return
        with self._catalog_lock:
            if self._compiled_versions.get(source.name) == version:
                return
            source.compile_capabilities()
            self._compiled_versions[source.name] = version

    def bump_catalog(self) -> int:
        """Record a catalog mutation (source added / replaced / data
        swapped): advances the version so stale cached plans can never
        be served.  Returns the new version."""
        with self._catalog_lock:
            self.catalog_version += 1
            return self.catalog_version

    def source(self, name: str) -> CapabilitySource:
        try:
            return self.catalog[name]
        except KeyError:
            raise PlanExecutionError(f"unknown source {name!r}") from None

    def cost_model(self, source_name: str | None = None) -> CostModel:
        """The Eq. 1 cost model over the registered sources' statistics."""
        # dict() of the live catalog is a C-level copy (atomic under the
        # GIL); iterating the live dict here raced concurrent add_source.
        stats = {name: src.stats for name, src in dict(self.catalog).items()}
        return CostModel(stats, self.k1, self.k2)

    # ------------------------------------------------------------------
    def plan(self, query: TargetQuery | str, planner: Planner | None = None
             ) -> PlanningResult:
        """Generate (but do not run) the best feasible plan for the query.

        With a plan cache configured, equivalent rewritings of the same
        query (commuted / reassociated conditions, same projection)
        share one cached :class:`PlanningResult` -- planner stats
        included, so a hit reports the *original* planning work, not a
        re-run.  Entries are versioned by the catalog: a lookup after
        :meth:`add_source` / :meth:`bump_catalog` re-plans.
        """
        if isinstance(query, str):
            query = parse_query(query)
        with get_tracer().span(
            "mediator.plan", query=str(query), source=query.source
        ) as span:
            source = self.source(query.source)
            source.schema.validate_attributes(query.attributes)
            source.schema.validate_attributes(query.condition.attributes())
            scheme = planner if planner is not None else self.planner
            if self.compile_capabilities:
                self._ensure_compiled(source)
            cache_key = None
            template_key = None
            # The version every outcome of this call is stamped with:
            # read *before* planning, so a concurrent catalog change
            # mid-plan leaves the result conservatively older, never
            # newer, than the catalog it was actually planned against.
            version = self.catalog_version
            if self.plan_cache is not None:
                from repro.serving.plan_cache import plan_cache_key

                cache_key = (plan_cache_key(query), scheme.name)
                cached = self.plan_cache.get(cache_key, version)
                if cached is not None:
                    span.add_event(
                        "plan.cache_hit", planner=cached.planner,
                        catalog_version=version,
                    )
                    span.set_attributes(
                        planner=cached.planner, feasible=cached.feasible,
                        cost=cached.cost, plan_cache="hit",
                    )
                    self._ask_scratch.plan_cache = "hit"
                    return cached
                span.add_event("plan.cache_miss", catalog_version=version)
                if self.plan_templates is not None:
                    template_key = self.plan_templates.key(query, scheme.name)
                    rebound = self.plan_templates.instantiate(
                        template_key, query, source, self.cost_model(),
                        version,
                    )
                    if rebound is not None:
                        # A validated constant rebinding of an earlier
                        # plan: promote it to an exact entry so repeats
                        # of *these* constants hit the canonical cache.
                        rebound.catalog_version = version
                        self.plan_cache.put(cache_key, rebound, version)
                        span.add_event(
                            "plan.template_hit", planner=rebound.planner,
                            catalog_version=version,
                        )
                        span.set_attributes(
                            planner=rebound.planner, feasible=rebound.feasible,
                            cost=rebound.cost, plan_cache="template_hit",
                        )
                        self._ask_scratch.plan_cache = "template_hit"
                        return rebound
            result = scheme.plan(query, source, self.cost_model())
            result.catalog_version = version
            if cache_key is not None:
                # Store under the version read *before* planning: a
                # concurrent catalog change mid-plan leaves a stale
                # entry that the versioned get() will refuse to serve.
                self.plan_cache.put(cache_key, result, version)
                if template_key is not None:
                    self.plan_templates.store(
                        template_key, query.condition, result, version
                    )
                span.set_attribute("plan_cache", "miss")
                self._ask_scratch.plan_cache = "miss"
            span.set_attributes(
                planner=result.planner, feasible=result.feasible,
                cost=result.cost,
            )
            return result

    def explain(self, query: TargetQuery | str, planner: Planner | None = None,
                trace: bool = False) -> str:
        """Plan (without executing) and render the chosen plan.

        With ``trace=True`` the planning run is traced into a private
        :class:`Tracer` and the rendered plan is followed by the
        planner-phase span timeline (rewrite/mark/generate/cost with Q
        and PR1-PR3 fire counts) -- "why was this plan picked" in one
        call.
        """
        from repro.plans.printer import explain as render

        if trace:
            from repro.observability.timeline import render_timeline

            with use_tracer(Tracer()) as tracer:
                result = self.plan(query, planner)
            timeline = render_timeline(tracer.finished_spans())
        else:
            result = self.plan(query, planner)
        header = result.describe()
        body = header if result.plan is None else (
            header + "\n" + render(result.plan, self.cost_model())
        )
        if trace:
            body += "\n\n" + timeline
        return body

    def ask(self, query: TargetQuery | str, planner: Planner | None = None,
            executor: str | None = None) -> MediatorAnswer:
        """Plan and execute; raise :class:`InfeasiblePlanError` if no plan.

        ``executor`` picks the execution engine for this ask --
        ``"serial"``, ``"parallel"`` or ``"async"`` (``None`` = the
        mediator's default).  With ``max_in_flight`` configured, the
        whole plan+execute is one admitted request -- however wide the
        chosen engine fans out inside, one ask holds one admission slot
        -- and past the limit :meth:`ask` raises
        :class:`~repro.errors.OverloadError` within the admission
        timeout instead of queueing without bound."""
        if isinstance(query, str):
            query = parse_query(query)
        with get_tracer().span(
            "mediator.ask", query=str(query), source=query.source
        ) as span:
            if self.slo is None and self.events is None:
                return self._admitted_ask(query, planner, span, executor)
            self._ask_scratch.plan_cache = ""
            started = time.perf_counter()
            try:
                answer = self._admitted_ask(query, planner, span, executor)
            except BaseException as exc:
                duration = time.perf_counter() - started
                if self.slo is not None:
                    self._observe_ask(query, duration, None, exc, span)
                if self.events is not None:
                    self._emit_event(query, duration, None, exc, span)
                raise
            duration = time.perf_counter() - started
            if self.slo is not None:
                self._observe_ask(query, duration, answer, None, span)
            if self.events is not None:
                self._emit_event(query, duration, answer, None, span)
            return answer

    def _admitted_ask(self, query: TargetQuery, planner: Planner | None,
                      span, executor: str | None = None) -> MediatorAnswer:
        if self.admission is None:
            return self._ask(query, planner, span, executor)
        with self.admission.admit():
            return self._ask(query, planner, span, executor)

    def _observe_ask(self, query: TargetQuery, duration: float,
                     answer: MediatorAnswer | None,
                     error: BaseException | None, span) -> None:
        """SLO accounting for one finished ask (success *or* failure):
        feed the latency histograms, and append any objective breach to
        the slow-query log with its plan fingerprint, per-source meter
        deltas and (when a tracer records) the rendered timeline."""
        trace_id = span.trace_id or None
        if self.ask_latency.observe(duration, trace_id=trace_id):
            # The latency landed in an exemplar slot: the exported
            # exemplar will point at this trace, so pin it through any
            # sampling decision (a dangling exemplar helps nobody).
            pin = getattr(get_tracer(), "pin_trace", None)
            if pin is not None:
                pin(trace_id)
        get_metrics().histogram("mediator.ask_seconds").observe(duration)
        if duration <= self.latency_objective:
            return
        get_metrics().counter("mediator.slo_breaches").inc()
        span.set_attribute("slo_breach", True)
        from repro.observability.slo import SlowQuery, plan_fingerprint
        from repro.serving.plan_cache import plan_cache_key

        per_source: dict[str, tuple[int, int]] = {}
        planner_name = None
        if answer is not None:
            planner_name = answer.planning.planner
            per_source = {
                name: (delta.queries, delta.tuples)
                for name, delta in answer.report.per_source.items()
            }
        timeline = None
        spans = get_tracer().trace_spans(span.trace_id) \
            if span.trace_id else []
        if spans:
            from repro.observability.timeline import render_timeline

            timeline = render_timeline(spans)
        self.slow_queries.append(SlowQuery(
            query=str(query),
            source=query.source,
            duration_seconds=duration,
            objective_seconds=self.latency_objective,
            fingerprint=plan_fingerprint(plan_cache_key(query)),
            planner=planner_name,
            error=f"{type(error).__name__}: {error}" if error else None,
            per_source=per_source,
            timeline=timeline,
            trace_id=span.trace_id or None,
        ))

    def _emit_event(self, query: TargetQuery, duration: float,
                    answer: MediatorAnswer | None,
                    error: BaseException | None, span) -> None:
        """Append the wide event of one finished ask to the event log."""
        from repro.errors import OverloadError
        from repro.observability.events import AskEvent
        from repro.observability.slo import plan_fingerprint
        from repro.serving.plan_cache import plan_cache_key

        if error is None:
            outcome = "ok"
        elif isinstance(error, OverloadError):
            outcome = "shed"
        else:
            outcome = type(error).__name__
        per_source: dict[str, list[int]] = {}
        planner_name = None
        answers = coalesced = batched = 0
        if answer is not None:
            planner_name = answer.planning.planner
            report = answer.report
            per_source = {
                name: [delta.queries, delta.tuples]
                for name, delta in report.per_source.items()
            }
            answers = len(report.result)
            coalesced = report.coalesced_hits
            batched = report.batched_hits
        self.events.append(AskEvent(
            query=str(query),
            source=query.source,
            outcome=outcome,
            duration_seconds=duration,
            trace_id=f"{span.trace_id:032x}" if span.trace_id else "",
            fingerprint=plan_fingerprint(plan_cache_key(query)),
            planner=planner_name,
            plan_cache=getattr(self._ask_scratch, "plan_cache", ""),
            per_source=per_source,
            answers=answers,
            coalesced_hits=coalesced,
            batched_hits=batched,
            error=f"{type(error).__name__}: {error}" if error else None,
        ))

    def _ask(self, query: TargetQuery, planner: Planner | None, span,
             executor: str | None = None) -> MediatorAnswer:
        """The admitted body of :meth:`ask` (under its span)."""
        if self.short_circuit_unsatisfiable and is_definitely_unsatisfiable(
            query.condition
        ):
            span.set_attribute("short_circuited", True)
            return self._empty_answer(query)
        planning = self.plan(query, planner)
        if planning.plan is None:
            raise InfeasiblePlanError(
                f"no feasible plan for {query} under the capabilities of "
                f"source {query.source!r}"
            )
        plan = planning.plan
        if self.minimal_answers:
            from repro.plans.minimal import prune_subsumed

            plan, pruned = prune_subsumed(plan)
            if pruned:
                get_metrics().counter(
                    "mediator.union_branches_pruned").inc(pruned)
                span.set_attribute("union_branches_pruned", pruned)
        engine = self._executor_for(executor)
        with get_tracer().span("mediator.execute") as exec_span:
            report = engine.execute_with_report(plan)
            exec_span.set_attributes(
                queries=report.queries,
                tuples=report.tuples_transferred,
                attempts=report.attempts,
                retries=report.retries,
                failovers=report.failovers,
            )
        span.set_attributes(
            rows=len(report.result), queries=report.queries,
            tuples=report.tuples_transferred,
        )
        return MediatorAnswer(query, planning, report)

    def _empty_answer(self, query: TargetQuery) -> MediatorAnswer:
        """The answer to a provably unsatisfiable query: empty, free."""
        from repro.plans.execute import ExecutionReport

        source = self.source(query.source)
        attrs = source.schema.validate_attributes(query.attributes)
        source.schema.validate_attributes(query.condition.attributes())
        schema = Schema(
            source.schema.name,
            tuple(a for a in source.schema.attrs if a.name in attrs),
            source.schema.key if source.schema.key in attrs else None,
        )
        planning = PlanningResult(
            planner="unsatisfiable-shortcut",
            query=query,
            plan=None,
            cost=0.0,
            stats=PlannerStats(),
            catalog_version=self.catalog_version,
        )
        report = ExecutionReport(Relation(schema, []), queries=0,
                                 tuples_transferred=0)
        return MediatorAnswer(query, planning, report)
