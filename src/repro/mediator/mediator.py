"""The mediator facade: register sources, plan and execute target queries.

This is the top of the paper's architecture: target queries "are
submitted to a mediator that generates and executes query plans that
respect the limitations of the source" (Section 3).  The default
plan-generation scheme is GenCompact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditions.simplify import is_definitely_unsatisfiable
from repro.data.relation import Relation
from repro.data.schema import Schema
from repro.errors import InfeasiblePlanError, PlanExecutionError
from repro.planners.base import Planner, PlannerStats, PlanningResult
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.plans.execute import ExecutionReport, Executor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery, parse_query
from repro.source.source import CapabilitySource


@dataclass
class MediatorAnswer:
    """Everything the mediator knows about one answered query."""

    query: TargetQuery
    planning: PlanningResult
    report: ExecutionReport

    @property
    def rows(self) -> list[dict]:
        return self.report.result.rows

    @property
    def result(self) -> Relation:
        return self.report.result


class Mediator:
    """Holds a catalog of capability-limited sources and answers queries."""

    def __init__(
        self,
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        short_circuit_unsatisfiable: bool = True,
        result_cache_tuples: int | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        """``short_circuit_unsatisfiable`` answers provably empty queries
        (e.g. ``price < 10 and price > 20``) locally, without planning or
        contacting the source.  ``result_cache_tuples`` enables an LRU
        source-query result cache bounded by that many cached tuples.
        ``retry_policy`` makes the mediator's executor retry transient
        source failures (capability rejections are never retried)."""
        self.planner = planner if planner is not None else GenCompact()
        self.k1 = k1
        self.k2 = k2
        self.short_circuit_unsatisfiable = short_circuit_unsatisfiable
        self.catalog: dict[str, CapabilitySource] = {}
        self.result_cache = None
        if result_cache_tuples is not None:
            from repro.plans.cache import ResultCache

            self.result_cache = ResultCache(result_cache_tuples)
        self._executor = Executor(
            self.catalog, cache=self.result_cache, retry_policy=retry_policy
        )

    # ------------------------------------------------------------------
    def add_source(self, source: CapabilitySource) -> None:
        """Register a source (its name becomes its FROM-clause name)."""
        if source.name in self.catalog:
            raise PlanExecutionError(f"a source named {source.name!r} already exists")
        self.catalog[source.name] = source

    def source(self, name: str) -> CapabilitySource:
        try:
            return self.catalog[name]
        except KeyError:
            raise PlanExecutionError(f"unknown source {name!r}") from None

    def cost_model(self, source_name: str | None = None) -> CostModel:
        """The Eq. 1 cost model over the registered sources' statistics."""
        stats = {name: src.stats for name, src in self.catalog.items()}
        return CostModel(stats, self.k1, self.k2)

    # ------------------------------------------------------------------
    def plan(self, query: TargetQuery | str, planner: Planner | None = None
             ) -> PlanningResult:
        """Generate (but do not run) the best feasible plan for the query."""
        if isinstance(query, str):
            query = parse_query(query)
        source = self.source(query.source)
        source.schema.validate_attributes(query.attributes)
        source.schema.validate_attributes(query.condition.attributes())
        scheme = planner if planner is not None else self.planner
        return scheme.plan(query, source, self.cost_model())

    def explain(self, query: TargetQuery | str, planner: Planner | None = None
                ) -> str:
        """Plan (without executing) and render the chosen plan."""
        from repro.plans.printer import explain as render

        result = self.plan(query, planner)
        header = result.describe()
        if result.plan is None:
            return header
        return header + "\n" + render(result.plan, self.cost_model())

    def ask(self, query: TargetQuery | str, planner: Planner | None = None
            ) -> MediatorAnswer:
        """Plan and execute; raise :class:`InfeasiblePlanError` if no plan."""
        if isinstance(query, str):
            query = parse_query(query)
        if self.short_circuit_unsatisfiable and is_definitely_unsatisfiable(
            query.condition
        ):
            return self._empty_answer(query)
        planning = self.plan(query, planner)
        if planning.plan is None:
            raise InfeasiblePlanError(
                f"no feasible plan for {query} under the capabilities of "
                f"source {query.source!r}"
            )
        report = self._executor.execute_with_report(planning.plan)
        return MediatorAnswer(query, planning, report)

    def _empty_answer(self, query: TargetQuery) -> MediatorAnswer:
        """The answer to a provably unsatisfiable query: empty, free."""
        from repro.plans.execute import ExecutionReport

        source = self.source(query.source)
        attrs = source.schema.validate_attributes(query.attributes)
        source.schema.validate_attributes(query.condition.attributes())
        schema = Schema(
            source.schema.name,
            tuple(a for a in source.schema.attrs if a.name in attrs),
            source.schema.key if source.schema.key in attrs else None,
        )
        planning = PlanningResult(
            planner="unsatisfiable-shortcut",
            query=query,
            plan=None,
            cost=0.0,
            stats=PlannerStats(),
        )
        report = ExecutionReport(Relation(schema, []), queries=0,
                                 tuples_transferred=0)
        return MediatorAnswer(query, planning, report)
