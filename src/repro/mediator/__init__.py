"""The mediator facade."""

from repro.mediator.mediator import Mediator, MediatorAnswer

__all__ = ["Mediator", "MediatorAnswer"]
