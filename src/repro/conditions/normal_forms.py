"""Conjunctive and disjunctive normal forms.

These power the two baseline strategies the paper compares against:

* Garlic transforms every condition to **CNF** and pushes the supported
  clauses to the source (Sections 1 and 2).
* A **DNF** system splits the condition into disjuncts and sends one
  source query per disjunct (Example 1.1's "good plan" happens to be the
  DNF plan; Example 1.2 shows DNF can also be wasteful).

Both conversions can blow up exponentially; a ``max_terms`` budget guards
against pathological inputs (the baselines treat budget exhaustion as
"cannot produce a plan this way").
"""

from __future__ import annotations

from itertools import product

from repro.conditions.canonical import canonicalize
from repro.conditions.tree import Condition, conjunction, disjunction
from repro.errors import ConditionError

#: Default cap on the number of clauses/terms a conversion may produce.
DEFAULT_MAX_TERMS = 4096


def to_dnf(condition: Condition, max_terms: int = DEFAULT_MAX_TERMS) -> Condition:
    """Convert to disjunctive normal form: OR of ANDs of atoms.

    The result is canonical.  Raises :class:`ConditionError` if more than
    ``max_terms`` conjunctive terms would be produced.
    """
    terms = dnf_terms(condition, max_terms)
    return canonicalize(disjunction([conjunction(term) for term in terms]))


def to_cnf(condition: Condition, max_terms: int = DEFAULT_MAX_TERMS) -> Condition:
    """Convert to conjunctive normal form: AND of ORs of atoms.

    The result is canonical.  Raises :class:`ConditionError` if more than
    ``max_terms`` clauses would be produced.
    """
    clauses = cnf_clauses(condition, max_terms)
    return canonicalize(conjunction([disjunction(clause) for clause in clauses]))


def dnf_terms(
    condition: Condition, max_terms: int = DEFAULT_MAX_TERMS
) -> list[list[Condition]]:
    """The DNF as a list of terms, each a list of leaf conditions."""
    condition = canonicalize(condition)
    return _distribute(condition, over_or=True, max_terms=max_terms)

def cnf_clauses(
    condition: Condition, max_terms: int = DEFAULT_MAX_TERMS
) -> list[list[Condition]]:
    """The CNF as a list of clauses, each a list of leaf conditions."""
    condition = canonicalize(condition)
    return _distribute(condition, over_or=False, max_terms=max_terms)


def _distribute(
    condition: Condition, over_or: bool, max_terms: int
) -> list[list[Condition]]:
    """Shared DNF/CNF worker.

    With ``over_or=True`` computes DNF terms; with ``over_or=False`` CNF
    clauses, by duality (swap the roles of AND and OR).
    """
    if condition.is_true:
        return []
    if condition.is_leaf:
        return [[condition]]
    # "outer" is the connective that separates terms in the result
    # (OR for DNF, AND for CNF); "inner" joins atoms within a term.
    outer_is_or = condition.is_or
    child_results = [_distribute(c, over_or, max_terms) for c in condition.children]
    if outer_is_or == over_or:
        # Same polarity as the target outer connective: concatenate terms.
        merged: list[list[Condition]] = []
        for terms in child_results:
            merged.extend(terms)
            if len(merged) > max_terms:
                raise ConditionError(
                    f"normal-form conversion exceeded {max_terms} terms"
                )
        return merged
    # Opposite polarity: cross-product distribution.
    total = 1
    for terms in child_results:
        total *= max(len(terms), 1)
        if total > max_terms:
            raise ConditionError(f"normal-form conversion exceeded {max_terms} terms")
    crossed: list[list[Condition]] = []
    for combo in product(*[terms or [[]] for terms in child_results]):
        merged_term: list[Condition] = []
        seen = set()
        for part in combo:
            for atom_leaf in part:
                if atom_leaf not in seen:
                    seen.add(atom_leaf)
                    merged_term.append(atom_leaf)
        crossed.append(merged_term)
    return crossed
