"""Condition expressions and condition trees (CTs).

Public surface of the ``repro.conditions`` package:

* :class:`Atom`, :class:`Op` -- atomic conditions.
* :class:`Condition` tree nodes: :class:`Leaf`, :class:`And`, :class:`Or`,
  and the :data:`TRUE` singleton.
* :func:`parse_condition` -- text to tree.
* :func:`canonicalize` / :func:`is_canonical` -- Section 6.4 canonical form.
* :func:`to_cnf` / :func:`to_dnf` -- normal forms for the baseline planners.
* :class:`RewriteEngine` and the rule sets -- Section 5.1 / 6.1.
* :func:`logically_equivalent` -- truth-table equivalence (testing aid).
"""

from repro.conditions.atoms import Atom, Op, Value, format_value, op_from_text
from repro.conditions.canonical import canonicalize, is_canonical
from repro.conditions.normal_forms import cnf_clauses, dnf_terms, to_cnf, to_dnf
from repro.conditions.parser import parse_condition
from repro.conditions.rewrite import (
    GENCOMPACT_RULES,
    GENMODULAR_RULES,
    RewriteEngine,
    RewriteResult,
    associative_rule,
    commutative_rule,
    copy_rule,
    distributive_rule,
    enumerate_orderings,
    factoring_rule,
)
from repro.conditions.semantics import logically_equivalent
from repro.conditions.simplify import (
    contradicts,
    implies,
    is_definitely_unsatisfiable,
    simplify,
)
from repro.conditions.tree import (
    TRUE,
    And,
    Condition,
    Leaf,
    Or,
    TrueCondition,
    conjunction,
    disjunction,
    leaf,
)

__all__ = [
    "Atom",
    "Op",
    "Value",
    "format_value",
    "op_from_text",
    "Condition",
    "Leaf",
    "And",
    "Or",
    "TRUE",
    "TrueCondition",
    "conjunction",
    "disjunction",
    "leaf",
    "parse_condition",
    "canonicalize",
    "is_canonical",
    "to_cnf",
    "to_dnf",
    "cnf_clauses",
    "dnf_terms",
    "RewriteEngine",
    "RewriteResult",
    "GENMODULAR_RULES",
    "GENCOMPACT_RULES",
    "commutative_rule",
    "associative_rule",
    "distributive_rule",
    "factoring_rule",
    "copy_rule",
    "enumerate_orderings",
    "logically_equivalent",
    "simplify",
    "implies",
    "contradicts",
    "is_definitely_unsatisfiable",
]
