"""Canonical condition trees (Section 6.4).

A CT is *canonical* when the children of every AND node are leaves or OR
nodes, and the children of every OR node are leaves or AND nodes -- i.e.
same-kind connectors never nest directly.  GenCompact's plan-generation
module canonicalizes every CT it receives; IPG then implicitly explores
all the regroupings GenModular would reach through the associativity and
copy rewrite rules.

Canonicalization preserves the left-to-right order of the atomic
conditions (order matters to order-sensitive SSDL grammars) and runs in
time linear in the size of the input tree, as the paper requires.
"""

from __future__ import annotations

from repro.conditions.tree import And, Condition, Or


def canonicalize(condition: Condition) -> Condition:
    """Return the canonical equivalent of ``condition``.

    Flattens directly nested same-kind connectors (``a AND (b AND c)``
    becomes ``a AND b AND c``) bottom-up.  Leaves and TRUE are returned
    unchanged.
    """
    if not condition.children:
        return condition
    flat: list[Condition] = []
    for child in condition.children:
        child = canonicalize(child)
        if type(child) is type(condition):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    if condition.is_and:
        return And(flat)
    return Or(flat)


def is_canonical(condition: Condition) -> bool:
    """True iff no connector node has a child of its own kind."""
    for node in condition.nodes():
        for child in node.children:
            if type(child) is type(node):
                return False
    return True
