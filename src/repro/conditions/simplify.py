"""Value-level simplification of condition trees.

The rewrite rules of Section 5.1 are pure Boolean-algebra identities.
This module adds the *value-level* reasoning a production mediator
needs on top: implication and contradiction between atomic conditions
on the same attribute (``price < 10`` implies ``price < 20``;
``make = 'BMW'`` contradicts ``make = 'Toyota'``), and the
simplifications they license:

* dropping implied conjuncts / implying disjuncts,
* absorption (``x OR (x AND y)`` → ``x``),
* duplicate-child elimination,
* sound (but incomplete) unsatisfiability detection, which lets the
  mediator answer provably empty queries without contacting the source.

All transformations preserve logical equivalence on every relation.
"""

from __future__ import annotations

from itertools import combinations

from repro.conditions.atoms import Atom, Op
from repro.conditions.canonical import canonicalize
from repro.conditions.normal_forms import dnf_terms
from repro.conditions.tree import And, Condition, Or
from repro.errors import ConditionError

#: dnf_terms budget for unsatisfiability checking.
_UNSAT_MAX_TERMS = 256


def _comparable(left, right) -> bool:
    """Can the two constants be ordered meaningfully?"""
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, str) != isinstance(right, str):
        return False
    return isinstance(left, (int, float, str)) and isinstance(
        right, (int, float, str)
    )


def implies(premise: Atom, conclusion: Atom) -> bool:
    """Sound, incomplete test: does ``premise`` imply ``conclusion``?

    Only atoms on the same attribute can be related.  Covers the
    order/equality/membership/substring interactions; anything not
    recognized returns False (never unsound).
    """
    if premise.attribute != conclusion.attribute:
        return False
    if premise == conclusion:
        return True
    p_op, c_op = premise.op, conclusion.op
    pv, cv = premise.value, conclusion.value

    # From an equality premise, evaluate the conclusion directly.
    if p_op is Op.EQ:
        return conclusion.matches({conclusion.attribute: pv})

    if p_op is Op.IN:
        # Every member must satisfy the conclusion.
        return all(
            conclusion.matches({conclusion.attribute: member}) for member in pv
        )
    if p_op is Op.CONTAINS and c_op is Op.CONTAINS:
        # Containing a longer needle implies containing any substring
        # of it.
        return cv.lower() in pv.lower()
    if not _comparable(pv, cv):
        # Range reasoning needs comparable constants.
        return False

    try:
        if p_op is Op.LT:
            if c_op in (Op.LT, Op.LE):
                return pv <= cv
            if c_op is Op.NE:
                return cv >= pv
        if p_op is Op.LE:
            if c_op is Op.LE:
                return pv <= cv
            if c_op is Op.LT:
                return pv < cv
            if c_op is Op.NE:
                return cv > pv
        if p_op is Op.GT:
            if c_op is Op.GT:
                return pv >= cv
            if c_op is Op.GE:
                return pv >= cv
            if c_op is Op.NE:
                return cv <= pv
        if p_op is Op.GE:
            if c_op is Op.GE:
                return pv >= cv
            if c_op is Op.GT:
                return pv > cv
            if c_op is Op.NE:
                return cv < pv
        if p_op is Op.NE and c_op is Op.NE:
            return pv == cv
    except TypeError:
        return False
    return False


def contradicts(left: Atom, right: Atom) -> bool:
    """Sound, incomplete test: can no value satisfy both atoms?"""
    if left.attribute != right.attribute:
        return False
    for premise, conclusion in ((left, right), (right, left)):
        if premise.op is Op.EQ and not conclusion.matches(
            {conclusion.attribute: premise.value}
        ):
            return True
        if premise.op is Op.IN and not any(
            conclusion.matches({conclusion.attribute: member})
            for member in premise.value
        ):
            return True
    lv, rv = left.value, right.value
    if not _comparable(lv, rv):
        return False
    try:
        lo_ops = {Op.GT, Op.GE}
        hi_ops = {Op.LT, Op.LE}
        if left.op in hi_ops and right.op in lo_ops:
            upper, lower = left, right
        elif left.op in lo_ops and right.op in hi_ops:
            upper, lower = right, left
        else:
            return False
        strict = upper.op is Op.LT or lower.op is Op.GT
        if strict:
            return lower.value >= upper.value
        return lower.value > upper.value
    except TypeError:
        return False


def simplify(condition: Condition) -> Condition:
    """An equivalent, usually smaller condition tree.

    Canonicalizes, removes duplicate children, applies absorption, and
    drops conjuncts implied by a sibling (dually, disjuncts that imply a
    sibling).  The result is canonical.
    """
    condition = canonicalize(condition)
    return _simplify(condition)


def _simplify(condition: Condition) -> Condition:
    if not condition.children:
        return condition
    children = [_simplify(child) for child in condition.children]
    # Deduplicate structurally.
    unique: list[Condition] = []
    seen: set[Condition] = set()
    for child in children:
        if child not in seen:
            seen.add(child)
            unique.append(child)
    unique = _absorb(condition, unique)
    unique = _prune_by_implication(condition, unique)
    if len(unique) == 1:
        return unique[0]
    rebuilt = And(unique) if condition.is_and else Or(unique)
    return canonicalize(rebuilt)


def _members(child: Condition, inner_kind: type) -> frozenset[Condition]:
    if isinstance(child, inner_kind):
        return frozenset(child.children)
    return frozenset([child])


def _absorb(parent: Condition, children: list[Condition]) -> list[Condition]:
    """Absorption: under OR, drop (x AND y) when x is a sibling; dually
    under AND, drop (x OR y) when x is a sibling."""
    inner_kind = And if parent.is_or else Or
    atoms_like = set(children)
    kept: list[Condition] = []
    for child in children:
        members = _members(child, inner_kind)
        if len(members) > 1 and any(
            m in atoms_like and m != child for m in members
        ):
            continue
        kept.append(child)
    return kept if kept else children[:1]


def _prune_by_implication(
    parent: Condition, children: list[Condition]
) -> list[Condition]:
    """Under AND drop children implied by a sibling; under OR drop
    children that imply a sibling.  Only leaf-to-leaf implications are
    used (sound and cheap)."""
    drop: set[int] = set()
    for (i, a), (j, b) in combinations(enumerate(children), 2):
        if i in drop or j in drop:
            continue
        if not (a.is_leaf and b.is_leaf):
            continue
        if parent.is_and:
            # a implies b  =>  b is redundant in the conjunction.
            if implies(a.atom, b.atom):
                drop.add(j)
            elif implies(b.atom, a.atom):
                drop.add(i)
        else:
            # a implies b  =>  a is redundant in the disjunction.
            if implies(a.atom, b.atom):
                drop.add(i)
            elif implies(b.atom, a.atom):
                drop.add(j)
    return [c for k, c in enumerate(children) if k not in drop]


def is_definitely_unsatisfiable(condition: Condition) -> bool:
    """True only if the condition provably selects nothing.

    Sound and incomplete: converts to DNF (budgeted) and reports True
    when *every* term contains a contradicting atom pair.  Returns False
    when the DNF budget is exceeded or no contradiction is found.
    """
    if condition.is_true:
        return False
    try:
        terms = dnf_terms(condition, max_terms=_UNSAT_MAX_TERMS)
    except ConditionError:
        return False
    if not terms:
        return False
    for term in terms:
        atoms = [leaf.atom for leaf in term]
        if not any(
            contradicts(a, b) for a, b in combinations(atoms, 2)
        ):
            return False
    return True
