"""Rewrite rules and the bounded rewrite engine (Section 5.1).

GenModular's rewrite module fires **commutative**, **associative**,
**distributive** and **copy** rules to enumerate condition trees
equivalent to the target-query condition.  GenCompact (Section 6.1)
drops commutativity (folded into the source description), and
associativity and copy (subsumed by IPG's canonical-tree processing),
keeping only the distributive family.

The full rewrite space is infinite (the copy rule alone sees to that),
so the engine performs breadth-first exploration under explicit budgets
and reports whether a budget truncated the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Callable, Iterator, Sequence

from repro.conditions.canonical import canonicalize
from repro.conditions.tree import And, Condition, Or

#: A rewrite rule: yields trees one rewrite step away from its input.
Rule = Callable[[Condition], Iterator[Condition]]


# ----------------------------------------------------------------------
# Generic machinery: apply a local transformation at every node position.
# ----------------------------------------------------------------------

def _apply_everywhere(
    tree: Condition, local: Callable[[Condition], Iterator[Condition]]
) -> Iterator[Condition]:
    """Yield every tree obtained by applying ``local`` at one node of ``tree``."""
    yield from local(tree)
    for index, child in enumerate(tree.children):
        for new_child in _apply_everywhere(child, local):
            children = list(tree.children)
            children[index] = new_child
            yield tree.with_children(children)  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# The individual rules
# ----------------------------------------------------------------------

def commutative_rule(tree: Condition) -> Iterator[Condition]:
    """Swap any two children of a connector node (one swap per result)."""

    def local(node: Condition) -> Iterator[Condition]:
        kids = node.children
        for i in range(len(kids)):
            for j in range(i + 1, len(kids)):
                swapped = list(kids)
                swapped[i], swapped[j] = swapped[j], swapped[i]
                yield node.with_children(swapped)  # type: ignore[attr-defined]

    yield from _apply_everywhere(tree, local)


def associative_rule(tree: Condition) -> Iterator[Condition]:
    """Regroup children: nest a contiguous run, or flatten a nested child."""

    def local(node: Condition) -> Iterator[Condition]:
        kids = node.children
        n = len(kids)
        # Grouping: wrap kids[i:j] in a nested node of the same kind.
        if n >= 3:
            for i in range(n):
                for j in range(i + 2, n + 1):
                    if j - i == n:
                        continue  # grouping everything is a no-op
                    grouped = type(node)(kids[i:j])
                    children = list(kids[:i]) + [grouped] + list(kids[j:])
                    yield node.with_children(children)  # type: ignore[attr-defined]
        # Flattening: splice a same-kind child's children in place.
        for index, child in enumerate(kids):
            if type(child) is type(node):
                children = list(kids[:index]) + list(child.children) + list(kids[index + 1:])
                yield node.with_children(children)  # type: ignore[attr-defined]

    yield from _apply_everywhere(tree, local)


def distributive_rule(tree: Condition) -> Iterator[Condition]:
    """Distribute a connector over an opposite-kind child.

    ``X AND (y1 OR y2) AND Z`` becomes ``(X AND y1 AND Z) OR (X AND y2 AND Z)``
    and dually for OR over AND.
    """

    def local(node: Condition) -> Iterator[Condition]:
        if not (node.is_and or node.is_or):
            return
        inner_cls = Or if node.is_and else And
        outer_cls = And if node.is_and else Or
        kids = node.children
        for index, child in enumerate(kids):
            if not isinstance(child, inner_cls):
                continue
            rest = list(kids[:index]) + list(kids[index + 1:])
            branches = []
            for alternative in child.children:
                branch_children = rest[:index] + [alternative] + rest[index:]
                branches.append(outer_cls(branch_children) if len(branch_children) > 1
                                else branch_children[0])
            yield inner_cls(branches)

    yield from _apply_everywhere(tree, local)


def factoring_rule(tree: Condition) -> Iterator[Condition]:
    """Inverse distribution: pull a common member out of opposite-kind children.

    ``(c AND x) OR (c AND y)`` becomes ``c AND (x OR y)``; when only some
    children share ``c`` the factored group sits beside the others.  The
    dual form handles ``(c OR x) AND (c OR y)``.
    """

    def local(node: Condition) -> Iterator[Condition]:
        if not (node.is_and or node.is_or):
            return
        inner_cls = And if node.is_or else Or  # children we look inside
        outer_cls = type(node)
        kids = node.children

        def members(child: Condition) -> tuple[Condition, ...]:
            if isinstance(child, inner_cls):
                return child.children
            return (child,)

        # Candidate common members: anything appearing in >= 2 children.
        counts: dict[Condition, int] = {}
        for child in kids:
            for member in set(members(child)):
                counts[member] = counts.get(member, 0) + 1
        for common, count in counts.items():
            if count < 2:
                continue
            sharing = [c for c in kids if common in members(c)]
            others = [c for c in kids if common not in members(c)]
            residuals = []
            degenerate = False
            for child in sharing:
                rest = [m for m in members(child) if m != common]
                if not rest:
                    # child == common: (c) OR (c AND x) == c; factoring
                    # would not be an equivalence step here, skip.
                    degenerate = True
                    break
                residuals.append(rest[0] if len(rest) == 1 else inner_cls(rest))
            if degenerate:
                continue
            factored = inner_cls(
                [common, outer_cls(residuals) if len(residuals) > 1 else residuals[0]]
            )
            if others:
                yield outer_cls(others + [factored])
            else:
                yield factored

    yield from _apply_everywhere(tree, local)


def copy_rule(tree: Condition) -> Iterator[Condition]:
    """The paper's copy rules: ``C == C AND C`` and ``C == C OR C``.

    Useful because the two copies can subsequently be rewritten
    differently (e.g. distributing one copy but not the other exposes
    plans neither form alone reaches).
    """

    def local(node: Condition) -> Iterator[Condition]:
        if node.is_true:
            return
        yield And([node, node])
        yield Or([node, node])

    yield from _apply_everywhere(tree, local)


#: Rule set used by GenModular (Section 5.1).
GENMODULAR_RULES: tuple[Rule, ...] = (
    commutative_rule,
    associative_rule,
    distributive_rule,
    factoring_rule,
    copy_rule,
)

#: Rule set used by GenCompact (Section 6.1): distribution both ways only.
GENCOMPACT_RULES: tuple[Rule, ...] = (
    distributive_rule,
    factoring_rule,
)


@dataclass
class RewriteResult:
    """Outcome of a bounded rewrite exploration."""

    trees: list[Condition]
    truncated: bool
    steps: int

    def __iter__(self):
        return iter(self.trees)

    def __len__(self) -> int:
        return len(self.trees)


@dataclass
class RewriteEngine:
    """Breadth-first closure of a seed tree under a rule set, with budgets.

    ``max_trees`` bounds the number of distinct trees returned,
    ``max_steps`` the number of rule applications attempted, and
    ``max_size_factor`` rejects trees that grew beyond
    ``factor * seed.size()`` (this is what tames the copy rule).
    When ``canonical`` is true every produced tree is canonicalized
    before deduplication -- GenCompact works exclusively with canonical
    trees.
    """

    rules: Sequence[Rule] = GENMODULAR_RULES
    max_trees: int = 500
    max_steps: int = 20000
    max_size_factor: float = 2.0
    canonical: bool = False

    def explore(self, seed: Condition) -> RewriteResult:
        if self.canonical:
            seed = canonicalize(seed)
        max_size = max(int(seed.size() * self.max_size_factor), seed.size() + 2)
        seen: dict[Condition, None] = {seed: None}
        frontier = [seed]
        steps = 0
        truncated = False
        while frontier:
            tree = frontier.pop(0)
            for rule in self.rules:
                for produced in rule(tree):
                    steps += 1
                    if steps > self.max_steps:
                        truncated = True
                        frontier.clear()
                        break
                    if self.canonical:
                        produced = canonicalize(produced)
                    if produced.size() > max_size or produced in seen:
                        continue
                    if len(seen) >= self.max_trees:
                        truncated = True
                        continue
                    seen[produced] = None
                    frontier.append(produced)
                if truncated and not frontier:
                    break
            if truncated and not frontier:
                break
        return RewriteResult(list(seen), truncated, steps)


def enumerate_orderings(condition: Condition, limit: int = 720) -> list[Condition]:
    """All reorderings of ``condition`` reachable by commutativity alone.

    Used by query fixing (Section 6.1): permutes the children of every
    connector node.  ``limit`` caps the number of results.
    """
    if not condition.children:
        return [condition]
    child_orderings = [enumerate_orderings(c, limit) for c in condition.children]
    results: list[Condition] = []
    for perm in permutations(range(len(condition.children))):
        stack: list[list[Condition]] = [[]]
        for index in perm:
            stack = [
                partial + [variant]
                for partial in stack
                for variant in child_orderings[index]
            ]
            if len(stack) > limit:
                stack = stack[:limit]
        for children in stack:
            results.append(condition.with_children(children))  # type: ignore[attr-defined]
            if len(results) >= limit:
                return results
    return results
