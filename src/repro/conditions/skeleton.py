"""Condition skeletons: query templates with the constants factored out.

Bind-joins and wrappers serve thousands of instances of the *same query
template* that differ only in constants (``make = 'BMW'`` today,
``make = 'Audi'`` tomorrow).  Because SSDL templates usually match
constant *classes* (``$str``, ``$num``) rather than specific values, the
feasible-plan structure is identical across instances -- only the cost
estimate changes.

A :class:`Skeleton` is a condition tree with each atom's value replaced
by a class marker, plus the extracted value vector.  Two conditions with
equal skeleton trees can share a plan: substitute the new values into
the old plan's source queries.  The substitution is *validated* against
the source description before use (so literal templates like
``style = 'sedan'``, whose support does depend on the value, fall back
to replanning safely).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditions.atoms import Atom
from repro.conditions.tree import And, Condition, Leaf, Or
from repro.errors import ConditionError
from repro.plans.nodes import (
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)

#: Representative values per constant class used inside skeleton trees.
_MARKERS = {
    "str": "\x00str",
    "num": 0,
    "bool": False,
    "tuple": ("\x00tuple",),
}


def _class_of(value) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, str):
        return "str"
    if isinstance(value, tuple):
        return "tuple"
    return "num"


@dataclass(frozen=True)
class Skeleton:
    """A condition template and the value vector extracted from it."""

    template: Condition
    values: tuple

    @classmethod
    def of(cls, condition: Condition) -> "Skeleton":
        values: list = []

        def strip(node: Condition) -> Condition:
            if node.is_true:
                return node
            if node.is_leaf:
                values.append(node.atom.value)
                marker = _MARKERS[_class_of(node.atom.value)]
                return Leaf(Atom(node.atom.attribute, node.atom.op, marker))
            children = [strip(child) for child in node.children]
            return And(children) if node.is_and else Or(children)

        template = strip(condition)
        return cls(template, tuple(values))

    def bind(self, values: tuple) -> Condition:
        """The concrete condition with ``values`` substituted in order."""
        if len(values) != len(self.values):
            raise ConditionError(
                f"skeleton expects {len(self.values)} values, got {len(values)}"
            )
        iterator = iter(values)

        def fill(node: Condition) -> Condition:
            if node.is_true:
                return node
            if node.is_leaf:
                return Leaf(Atom(node.atom.attribute, node.atom.op, next(iterator)))
            children = [fill(child) for child in node.children]
            return And(children) if node.is_and else Or(children)

        return fill(self.template)


def atom_substitution(
    old_root: Condition, new_root: Condition
) -> dict[Atom, Atom] | None:
    """Map each atom of ``old_root`` to its ``new_root`` counterpart.

    Returns None when the two conditions do not share a skeleton, or
    when the mapping would be ambiguous (the same old atom occurs at two
    positions that receive *different* new values -- substitution could
    then silently produce a wrong plan, so the caller must replan).
    """
    if Skeleton.of(old_root).template != Skeleton.of(new_root).template:
        return None
    mapping: dict[Atom, Atom] = {}
    for old_atom, new_atom in zip(old_root.atoms(), new_root.atoms()):
        existing = mapping.get(old_atom)
        if existing is not None and existing != new_atom:
            return None
        mapping[old_atom] = new_atom
    return mapping


def remap_condition(condition: Condition, mapping: dict[Atom, Atom]) -> Condition:
    """Rewrite a condition through an atom mapping (unknown atoms kept).

    Handles *derived* conditions too: planners build source queries from
    conjunctions of child subsets, which are not subtrees of the root,
    but their leaves are the root's atoms.
    """
    if condition.is_true:
        return condition
    if condition.is_leaf:
        return Leaf(mapping.get(condition.atom, condition.atom))
    children = [remap_condition(child, mapping) for child in condition.children]
    return And(children) if condition.is_and else Or(children)


def substitute_plan(plan: Plan, mapping: dict[Atom, Atom]) -> Plan:
    """A copy of ``plan`` with every condition rewritten through ``mapping``."""
    if isinstance(plan, SourceQuery):
        return SourceQuery(
            remap_condition(plan.condition, mapping), plan.attrs, plan.source
        )
    if isinstance(plan, Postprocess):
        return Postprocess(
            remap_condition(plan.condition, mapping),
            plan.attrs,
            substitute_plan(plan.input, mapping),
        )
    if isinstance(plan, (UnionPlan, IntersectPlan)):
        cls = type(plan)
        return cls([substitute_plan(child, mapping) for child in plan.children])
    raise ConditionError(f"cannot substitute into {type(plan).__name__}")
