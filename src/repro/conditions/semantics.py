"""Semantic helpers: logical equivalence of condition trees.

The rewrite module must only emit trees *equivalent* to its input
(Section 5.1).  The property tests verify this by exhausting truth
assignments over the distinct atomic conditions: rewrite rules are purely
Boolean, so equality as Boolean functions over free atom-variables
implies equivalence on every relation.
"""

from __future__ import annotations

from itertools import product

from repro.conditions.atoms import Atom
from repro.conditions.tree import Condition
from repro.errors import ConditionError

#: Refuse truth-table comparison beyond this many distinct atoms (2^n rows).
MAX_ATOMS = 16


def distinct_atoms(*conditions: Condition) -> list[Atom]:
    """The distinct atoms across the given conditions, in first-seen order."""
    seen: dict[Atom, None] = {}
    for condition in conditions:
        for atom in condition.atoms():
            seen.setdefault(atom)
    return list(seen)


def evaluate_abstract(condition: Condition, assignment: dict[Atom, bool]) -> bool:
    """Evaluate treating each atom as an independent Boolean variable."""
    if condition.is_true:
        return True
    if condition.is_leaf:
        return assignment[condition.atom]
    if condition.is_and:
        return all(evaluate_abstract(c, assignment) for c in condition.children)
    return any(evaluate_abstract(c, assignment) for c in condition.children)


def logically_equivalent(left: Condition, right: Condition) -> bool:
    """True iff the two trees denote the same Boolean function of their atoms.

    Sound for confirming rewrite correctness (rewrites are Boolean-algebra
    identities).  It may report ``False`` for pairs that are equivalent
    only because of value-level interactions between atoms (e.g.
    ``price < 10`` implies ``price < 20``); the rewrite engine never
    relies on such interactions.
    """
    atoms = distinct_atoms(left, right)
    if len(atoms) > MAX_ATOMS:
        raise ConditionError(
            f"refusing truth-table equivalence over {len(atoms)} atoms (max {MAX_ATOMS})"
        )
    for bits in product((False, True), repeat=len(atoms)):
        assignment = dict(zip(atoms, bits))
        if evaluate_abstract(left, assignment) != evaluate_abstract(right, assignment):
            return False
    return True
