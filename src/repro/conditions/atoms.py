"""Atomic conditions: the leaves of a condition tree.

The paper (Section 3) models the leaves of a condition tree (CT) as
*atomic conditions* -- simple comparisons such as ``make = "BMW"`` or
``price < 40000``.  We additionally support the ``contains`` operator used
by the bookstore example of Section 1 (``title contains "dreams"``) and an
``in`` operator for form fields that accept a list of values (the car
shopping guide of Example 1.2 allows "a list of values for size").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import ConditionError

#: The value types an atomic condition may compare against.
Value = Union[str, int, float, bool, tuple]


class Op(enum.Enum):
    """Comparison operators permitted in atomic conditions."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    CONTAINS = "contains"
    IN = "in"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Operators whose right-hand side must be ordered (numeric or string).
ORDERED_OPS = frozenset({Op.LT, Op.LE, Op.GT, Op.GE})

_OP_BY_TEXT = {op.value: op for op in Op}
# Common aliases accepted by the textual parser.
_OP_BY_TEXT["=="] = Op.EQ
_OP_BY_TEXT["<>"] = Op.NE


def op_from_text(text: str) -> Op:
    """Return the :class:`Op` for its textual spelling (``"<="`` etc.).

    Raises :class:`ConditionError` for an unknown operator.
    """
    try:
        return _OP_BY_TEXT[text.lower()]
    except KeyError:
        raise ConditionError(f"unknown comparison operator {text!r}") from None


@dataclass(frozen=True)
class Atom:
    """An atomic condition ``attribute op value``.

    Instances are immutable and hashable so they can be shared between
    condition trees and used as dictionary keys (the mark module and the
    planners key tables by (sub)conditions).
    """

    attribute: str
    op: Op
    value: Value

    def __post_init__(self) -> None:
        if not self.attribute:
            raise ConditionError("atomic condition needs a non-empty attribute")
        if self.op is Op.IN:
            if not isinstance(self.value, tuple):
                # Normalize lists/sets to a stable tuple representation.
                if isinstance(self.value, (list, set, frozenset)):
                    object.__setattr__(self, "value", tuple(sorted(self.value, key=repr)))
                else:
                    raise ConditionError("the 'in' operator requires a collection value")
            if len(self.value) == 0:
                raise ConditionError("the 'in' operator requires a non-empty collection")
        elif self.op is Op.CONTAINS:
            if not isinstance(self.value, str):
                raise ConditionError("the 'contains' operator requires a string value")
        elif self.op in ORDERED_OPS:
            if isinstance(self.value, bool) or not isinstance(self.value, (int, float, str)):
                raise ConditionError(
                    f"operator {self.op} requires an orderable value, got {self.value!r}"
                )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def matches(self, row: dict) -> bool:
        """Evaluate this atomic condition against ``row`` (attr -> value).

        A missing attribute evaluates to ``False`` (the tuple cannot
        satisfy a condition on an attribute it does not have).
        """
        if self.attribute not in row:
            return False
        actual = row[self.attribute]
        if actual is None:
            return False
        op = self.op
        if op is Op.EQ:
            return actual == self.value
        if op is Op.NE:
            return actual != self.value
        if op is Op.CONTAINS:
            return isinstance(actual, str) and self.value.lower() in actual.lower()
        if op is Op.IN:
            return actual in self.value
        # Ordered comparisons: guard against cross-type comparisons, which
        # raise TypeError in Python 3.
        if isinstance(actual, str) != isinstance(self.value, str):
            return False
        try:
            if op is Op.LT:
                return actual < self.value
            if op is Op.LE:
                return actual <= self.value
            if op is Op.GT:
                return actual > self.value
            if op is Op.GE:
                return actual >= self.value
        except TypeError:
            return False
        raise AssertionError(f"unhandled operator {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render as the textual condition syntax (parseable back)."""
        return f"{self.attribute} {self.op.value} {format_value(self.value)}"

    def __str__(self) -> str:
        return self.to_text()


def format_value(value: Value) -> str:
    """Render a constant the way the condition text parser expects it."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, tuple):
        return "(" + ", ".join(format_value(v) for v in value) + ")"
    return repr(value)
