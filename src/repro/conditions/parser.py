"""Textual parser for condition expressions.

Accepts the syntax the rest of the library prints, e.g.::

    make = 'BMW' and price <= 40000 and (color = 'red' or color = 'black')
    style = 'sedan' and size in ('compact', 'midsize')
    title contains 'dreams'

``and`` binds tighter than ``or``; parentheses override and are preserved
as explicit tree structure (the condition tree shape matters to
order-sensitive and structure-sensitive SSDL grammars, so the parser
never reassociates what the user wrote).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.conditions.atoms import Atom, Op, op_from_text
from repro.conditions.tree import TRUE, And, Condition, Leaf, Or
from repro.errors import ConditionParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|<>|==|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>'(?:\\.|[^'\\])*'|"(?:\\.|[^"\\])*")
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "in", "contains", "true", "false"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConditionParseError(
                f"unexpected character {text[pos]!r} at position {pos}", pos
            )
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind == "ws":
            continue
        if kind == "ident" and value.lower() in _KEYWORDS:
            kind = value.lower()
            value = value.lower()
        tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


def _unescape(quoted: str) -> str:
    body = quoted[1:-1]
    return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ConditionParseError(
                f"expected {kind} but found {token.text or 'end of input'!r} "
                f"at position {token.pos}",
                token.pos,
            )
        return self.advance()

    # -- grammar -----------------------------------------------------------
    def parse(self) -> Condition:
        expr = self.parse_or()
        token = self.peek()
        if token.kind != "eof":
            raise ConditionParseError(
                f"trailing input {token.text!r} at position {token.pos}", token.pos
            )
        return expr

    def parse_or(self) -> Condition:
        parts = [self.parse_and()]
        while self.peek().kind == "or":
            self.advance()
            parts.append(self.parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(parts)

    def parse_and(self) -> Condition:
        parts = [self.parse_factor()]
        while self.peek().kind == "and":
            self.advance()
            parts.append(self.parse_factor())
        if len(parts) == 1:
            return parts[0]
        return And(parts)

    def parse_factor(self) -> Condition:
        token = self.peek()
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_or()
            self.expect("rparen")
            return inner
        if token.kind == "true":
            self.advance()
            return TRUE
        if token.kind == "ident":
            return self.parse_atom()
        raise ConditionParseError(
            f"expected a condition but found {token.text or 'end of input'!r} "
            f"at position {token.pos}",
            token.pos,
        )

    def parse_atom(self) -> Leaf:
        attr = self.expect("ident").text
        token = self.peek()
        if token.kind == "op":
            self.advance()
            op = op_from_text(token.text)
            value = self.parse_value()
            return Leaf(Atom(attr, op, value))
        if token.kind == "contains":
            self.advance()
            value_token = self.expect("string")
            return Leaf(Atom(attr, Op.CONTAINS, _unescape(value_token.text)))
        if token.kind == "in":
            self.advance()
            self.expect("lparen")
            values = [self.parse_value()]
            while self.peek().kind == "comma":
                self.advance()
                values.append(self.parse_value())
            self.expect("rparen")
            return Leaf(Atom(attr, Op.IN, tuple(values)))
        raise ConditionParseError(
            f"expected an operator after {attr!r} at position {token.pos}", token.pos
        )

    def parse_value(self):
        token = self.advance()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return _unescape(token.text)
        if token.kind == "true":
            return True
        if token.kind == "false":
            return False
        raise ConditionParseError(
            f"expected a constant but found {token.text or 'end of input'!r} "
            f"at position {token.pos}",
            token.pos,
        )


def parse_condition(text: str) -> Condition:
    """Parse a condition expression into a :class:`Condition` tree."""
    return _Parser(text).parse()
