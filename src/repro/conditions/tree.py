"""Condition trees (CTs), the paper's central syntactic object (Section 3).

A condition tree has atomic conditions at the leaves and the Boolean
connectors AND / OR at internal nodes.  Trees are immutable and hashable:
planners use (sub)trees as dictionary keys, and the rewrite engine
deduplicates trees structurally.

Structural equality is *order sensitive*: ``a AND b`` and ``b AND a`` are
different trees.  This is deliberate -- SSDL grammars can be order
sensitive (Section 6.1), and the commutativity rewrite rule exists
precisely to move between such trees.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.conditions.atoms import Atom
from repro.errors import ConditionError


class Condition:
    """Abstract base for condition-tree nodes.

    Concrete subclasses: :class:`Leaf`, :class:`And`, :class:`Or`, and the
    :data:`TRUE` singleton (:class:`TrueCondition`).
    """

    __slots__ = ("_hash",)

    # -- structure -----------------------------------------------------
    @property
    def children(self) -> tuple["Condition", ...]:
        return ()

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def is_and(self) -> bool:
        return False

    @property
    def is_or(self) -> bool:
        return False

    @property
    def is_true(self) -> bool:
        return False

    def atoms(self) -> tuple[Atom, ...]:
        """All atomic conditions, left to right (with duplicates)."""
        out: list[Atom] = []
        self._collect_atoms(out)
        return tuple(out)

    def _collect_atoms(self, out: list[Atom]) -> None:
        for child in self.children:
            child._collect_atoms(out)

    def attributes(self) -> frozenset[str]:
        """``Attr(C)``: the set of attributes appearing in this condition."""
        return frozenset(a.attribute for a in self.atoms())

    def nodes(self) -> Iterator["Condition"]:
        """Pre-order traversal of all nodes in this tree."""
        yield self
        for child in self.children:
            yield from child.nodes()

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    # -- semantics ------------------------------------------------------
    def evaluate(self, row: dict) -> bool:
        """Evaluate the condition against a tuple (attr -> value dict)."""
        raise NotImplementedError

    # -- presentation ---------------------------------------------------
    def to_text(self, parent: str | None = None) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_text()!r})"

    # -- equality / hashing ---------------------------------------------
    def _key(self):
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Condition):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
        return h


class TrueCondition(Condition):
    """The trivially true condition used by download plans: ``SP(true, A, R)``."""

    __slots__ = ()

    _instance: "TrueCondition | None" = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    @property
    def is_true(self) -> bool:
        return True

    def evaluate(self, row: dict) -> bool:
        return True

    def to_text(self, parent: str | None = None) -> str:
        return "true"

    def _key(self):
        return ("true",)


#: Singleton instance of the trivially true condition.
TRUE = TrueCondition()


class Leaf(Condition):
    """A leaf node wrapping a single :class:`Atom`."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom):
        if not isinstance(atom, Atom):
            raise ConditionError(f"Leaf requires an Atom, got {type(atom).__name__}")
        object.__setattr__(self, "atom", atom)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Condition nodes are immutable")

    @property
    def is_leaf(self) -> bool:
        return True

    def _collect_atoms(self, out: list[Atom]) -> None:
        out.append(self.atom)

    def evaluate(self, row: dict) -> bool:
        return self.atom.matches(row)

    def to_text(self, parent: str | None = None) -> str:
        return self.atom.to_text()

    def _key(self):
        return ("leaf", self.atom)


class _Connector(Condition):
    """Shared implementation for AND / OR nodes."""

    __slots__ = ("_children",)

    #: "and" / "or", set by subclasses.
    kind: str = ""

    def __init__(self, children: Sequence[Condition]):
        children = tuple(children)
        if len(children) < 2:
            raise ConditionError(
                f"{self.kind.upper()} node requires at least two children, got {len(children)}"
            )
        for child in children:
            if not isinstance(child, Condition):
                raise ConditionError(
                    f"{self.kind.upper()} child must be a Condition, got {type(child).__name__}"
                )
            if child.is_true:
                raise ConditionError("TRUE may not appear inside a connector node")
        object.__setattr__(self, "_children", children)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("Condition nodes are immutable")

    @property
    def children(self) -> tuple[Condition, ...]:
        return self._children

    def with_children(self, children: Sequence[Condition]) -> Condition:
        """A copy of this node with different children (collapsing singletons)."""
        children = tuple(children)
        if len(children) == 1:
            return children[0]
        return type(self)(children)

    def to_text(self, parent: str | None = None) -> str:
        sep = f" {self.kind} "
        inner = sep.join(child.to_text(self.kind) for child in self.children)
        if parent is not None and parent != self.kind:
            return f"({inner})"
        if parent == self.kind:
            # Same connector nested under itself still needs parens to keep
            # the tree shape round-trippable through the text parser.
            return f"({inner})"
        return inner

    def _key(self):
        return (self.kind, self._children)


class And(_Connector):
    """A conjunction node (the paper's ∧)."""

    __slots__ = ()
    kind = "and"

    @property
    def is_and(self) -> bool:
        return True

    def evaluate(self, row: dict) -> bool:
        return all(child.evaluate(row) for child in self.children)


class Or(_Connector):
    """A disjunction node (the paper's ∨)."""

    __slots__ = ()
    kind = "or"

    @property
    def is_or(self) -> bool:
        return True

    def evaluate(self, row: dict) -> bool:
        return any(child.evaluate(row) for child in self.children)


# ----------------------------------------------------------------------
# Combination helpers used throughout the planners
# ----------------------------------------------------------------------

def conjunction(conditions: Sequence[Condition]) -> Condition:
    """``AND(conditions)``: the conjunction of the given conditions.

    Mirrors the paper's ``AND(Local)`` notation: the empty conjunction is
    TRUE, a singleton is the condition itself.  Nested And children are
    flattened so the result is in the shape planners expect.
    """
    return _combine(conditions, And)


def disjunction(conditions: Sequence[Condition]) -> Condition:
    """``OR(N)``: the disjunction of the given conditions (see Fig. 5)."""
    return _combine(conditions, Or)


def _combine(conditions: Sequence[Condition], cls: type[_Connector]) -> Condition:
    flat: list[Condition] = []
    for cond in conditions:
        if cond.is_true:
            continue
        if isinstance(cond, cls):
            flat.extend(cond.children)
        else:
            flat.append(cond)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return cls(flat)


def leaf(attribute: str, op, value) -> Leaf:
    """Convenience constructor: ``leaf("make", "=", "BMW")``."""
    from repro.conditions.atoms import Op, op_from_text

    if not isinstance(op, Op):
        op = op_from_text(op)
    return Leaf(Atom(attribute, op, value))
