"""repro -- a reproduction of *Capability-Sensitive Query Processing on
Internet Sources* (Garcia-Molina, Labio, Yerneni; ICDE 1999).

The library implements the paper end to end:

* **SSDL** source descriptions and the ``Check`` supportability test
  (:mod:`repro.ssdl`);
* condition trees, rewriting and normal forms (:mod:`repro.conditions`);
* the mediator plan algebra, cost model and executor (:mod:`repro.plans`);
* the plan-generation schemes -- exhaustive **GenModular** and the
  paper's efficient **GenCompact** -- plus the CNF (Garlic), DNF, DISCO
  and Naive baselines (:mod:`repro.planners`);
* simulated capability-limited Internet sources with enforcement and
  traffic metering (:mod:`repro.source`);
* a :class:`Mediator` facade tying it all together
  (:mod:`repro.mediator`).

Quickstart::

    from repro import Mediator, bookstore

    mediator = Mediator()
    mediator.add_source(bookstore())
    answer = mediator.ask(
        "SELECT title, author, price FROM bookstore "
        "WHERE (author = 'Sigmund Freud' or author = 'Carl Jung') "
        "and title contains 'dreams'"
    )
    print(answer.planning.describe())
    for row in answer.rows:
        print(row)
"""

from repro.conditions import (
    TRUE,
    And,
    Atom,
    Condition,
    Leaf,
    Op,
    Or,
    canonicalize,
    conjunction,
    disjunction,
    leaf,
    parse_condition,
    to_cnf,
    to_dnf,
)
from repro.errors import (
    InfeasiblePlanError,
    OverloadError,
    ReproError,
    SourceRateLimitError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
    UnsupportedQueryError,
)
from repro.mediator import Mediator, MediatorAnswer
from repro.planners import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    GenCompact,
    GenModular,
    NaivePlanner,
)
from repro.plans import (
    AsyncExecutor,
    BottleneckCostModel,
    CostModel,
    Executor,
    ParallelExecutor,
    RetryPolicy,
    explain,
    to_paper_notation,
    validate_plan,
)
from repro.query import TargetQuery, parse_query
from repro.source import (
    CapabilitySource,
    FaultInjector,
    SimulatedLatency,
    bank,
    bookstore,
    car_guide,
    classifieds,
    flights,
    standard_catalog,
)
from repro.joins import BindJoinExecutor, JoinAnswer, JoinSpec, bind_join
from repro.multisource import MirrorGroup, PartialAnswer, PartitionedSource
from repro.observability import (
    MetricsRegistry,
    NullTracer,
    Span,
    Tracer,
    get_metrics,
    get_tracer,
    render_timeline,
    set_tracer,
    use_tracer,
)
from repro.serving import (
    AdmissionController,
    LoadHarness,
    LoadReport,
    PlanCache,
)
from repro.ssdl import DescriptionBuilder, SourceDescription, parse_ssdl
from repro.wrapper import Wrapper, WrapperAnswer

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # conditions
    "Atom",
    "Op",
    "Condition",
    "Leaf",
    "And",
    "Or",
    "TRUE",
    "leaf",
    "conjunction",
    "disjunction",
    "parse_condition",
    "canonicalize",
    "to_cnf",
    "to_dnf",
    # ssdl
    "SourceDescription",
    "DescriptionBuilder",
    "parse_ssdl",
    # queries and plans
    "TargetQuery",
    "parse_query",
    "CostModel",
    "BottleneckCostModel",
    "Executor",
    "ParallelExecutor",
    "AsyncExecutor",
    "RetryPolicy",
    "explain",
    "to_paper_notation",
    "validate_plan",
    # planners
    "GenCompact",
    "GenModular",
    "CNFPlanner",
    "DNFPlanner",
    "DiscoPlanner",
    "NaivePlanner",
    # sources & mediator
    "CapabilitySource",
    "FaultInjector",
    "SimulatedLatency",
    "bookstore",
    "car_guide",
    "bank",
    "flights",
    "classifieds",
    "standard_catalog",
    "Mediator",
    "MediatorAnswer",
    # wrappers and joins
    "Wrapper",
    "WrapperAnswer",
    "JoinSpec",
    "JoinAnswer",
    "BindJoinExecutor",
    "bind_join",
    "MirrorGroup",
    "PartialAnswer",
    "PartitionedSource",
    # observability
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "render_timeline",
    "set_tracer",
    "use_tracer",
    # serving
    "AdmissionController",
    "LoadHarness",
    "LoadReport",
    "PlanCache",
    # errors
    "ReproError",
    "UnsupportedQueryError",
    "InfeasiblePlanError",
    "OverloadError",
    "TransientSourceError",
    "SourceUnavailableError",
    "SourceTimeoutError",
    "SourceRateLimitError",
]
