"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConditionError(ReproError):
    """Malformed condition expression or condition tree."""


class ConditionParseError(ConditionError):
    """The textual condition expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SSDLError(ReproError):
    """Malformed SSDL source description."""


class SSDLParseError(SSDLError):
    """The textual SSDL description could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        super().__init__(message)
        self.line = line


class GrammarError(SSDLError):
    """Structurally invalid grammar (unknown nonterminal, missing start rule...)."""


class SchemaError(ReproError):
    """Invalid schema definition or schema/tuple mismatch."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced that the schema does not define."""

    def __init__(self, attribute: str, schema_name: str = ""):
        where = f" in schema {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")
        self.attribute = attribute


class UnsupportedQueryError(ReproError):
    """A source query was submitted that the source's capabilities reject.

    Raised by the simulated source itself -- the analogue of an Internet
    source returning an error page for a form submission it cannot handle.
    """

    def __init__(self, message: str, condition=None, attributes=None):
        super().__init__(message)
        self.condition = condition
        self.attributes = attributes


class InfeasiblePlanError(ReproError):
    """No feasible plan exists (or was found) for the target query."""


class PlanExecutionError(ReproError):
    """A plan could not be executed (unknown source, bad structure...)."""


class QueryFixingError(ReproError):
    """A source query accepted by the commutation-closed description could not
    be reordered into a form the native description accepts."""


class BudgetExceededWarning(ReproError):
    """Internal signal: a search budget was exhausted (not user-facing)."""
