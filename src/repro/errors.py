"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConditionError(ReproError):
    """Malformed condition expression or condition tree."""


class ConditionParseError(ConditionError):
    """The textual condition expression could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class SSDLError(ReproError):
    """Malformed SSDL source description."""


class SSDLParseError(SSDLError):
    """The textual SSDL description could not be parsed."""

    def __init__(self, message: str, line: int | None = None):
        super().__init__(message)
        self.line = line


class GrammarError(SSDLError):
    """Structurally invalid grammar (unknown nonterminal, missing start rule...)."""


class SchemaError(ReproError):
    """Invalid schema definition or schema/tuple mismatch."""


class UnknownAttributeError(SchemaError):
    """An attribute was referenced that the schema does not define."""

    def __init__(self, attribute: str, schema_name: str = ""):
        where = f" in schema {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")
        self.attribute = attribute


class UnsupportedQueryError(ReproError):
    """A source query was submitted that the source's capabilities reject.

    Raised by the simulated source itself -- the analogue of an Internet
    source returning an error page for a form submission it cannot handle.
    """

    def __init__(self, message: str, condition=None, attributes=None):
        super().__init__(message)
        self.condition = condition
        self.attributes = attributes


class TransientSourceError(ReproError):
    """A source call failed for a reason that may not recur.

    This is the *retryable* family: unlike :class:`UnsupportedQueryError`
    (a capability rejection, permanent for a given query), a transient
    failure says nothing about the query itself -- the same call may
    succeed a moment later, or at a mirror.  Retry policies catch this
    base class and nothing else.
    """

    def __init__(self, message: str, source: str | None = None):
        super().__init__(message)
        self.source = source


class SourceUnavailableError(TransientSourceError):
    """The source did not answer at all (connection refused, outage)."""


class SourceTimeoutError(TransientSourceError):
    """The source took too long to answer.

    ``elapsed`` carries the simulated seconds spent waiting before the
    call was abandoned (charged to the plan's backoff accounting).
    """

    def __init__(self, message: str, source: str | None = None,
                 elapsed: float = 0.0):
        super().__init__(message, source=source)
        self.elapsed = elapsed


class SourceRateLimitError(TransientSourceError):
    """The source rejected the call for sending too many queries.

    ``retry_after`` is the source's suggested wait in (simulated)
    seconds; retry policies take ``max(backoff, retry_after)``.
    """

    def __init__(self, message: str, source: str | None = None,
                 retry_after: float = 0.0):
        super().__init__(message, source=source)
        self.retry_after = retry_after


class OverloadError(ReproError):
    """Admission control shed this request: the serving gate was full and
    no in-flight request finished within the queue timeout.

    This is a *load* signal, not a query property: the same request may
    succeed a moment later.  ``waited`` carries the seconds spent
    queueing before the request was shed.
    """

    def __init__(self, message: str, waited: float = 0.0):
        super().__init__(message)
        self.waited = waited


class InfeasiblePlanError(ReproError):
    """No feasible plan exists (or was found) for the target query."""


class PlanExecutionError(ReproError):
    """A plan could not be executed (unknown source, bad structure...)."""


class QueryFixingError(ReproError):
    """A source query accepted by the commutation-closed description could not
    be reordered into a form the native description accepts."""


class BudgetExceededWarning(ReproError):
    """Internal signal: a search budget was exhausted (not user-facing)."""
