"""Result caching for source queries.

Internet sources are slow and metered; mediators cache.  A
:class:`ResultCache` memoizes *source-query results* keyed by
``(source, condition, attributes)`` with LRU eviction bounded by total
cached tuples.  The executor consults it before contacting a source, so
repeated queries (dashboards, bind-join probes against hot values,
retried plans) stop costing anything.

Correctness note: the cache assumes sources are read-only for its
lifetime -- true of this library's simulated sources.  ``invalidate``
drops everything for a source if its relation is replaced.  Cached
relations are isolated from callers by copying on both ``put`` and
``get``: a caller mutating the rows it was handed (before or after the
entry was stored) cannot corrupt later cache hits.

The cache is **thread-safe**: the parallel executor consults one shared
cache from many worker threads, and LRU bookkeeping (move-to-end, the
eviction loop, the tuple budget) is read-modify-write, so every public
operation runs under an internal lock.  The copy-on-put/get discipline
does the rest -- each thread gets its own isolated relation, never a
reference shared with another thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.conditions.tree import Condition
from repro.data.relation import Relation

#: Cache key: (source name, condition tree, projected attributes).
CacheKey = tuple[str, Condition, frozenset]


def _copy_relation(relation: Relation) -> Relation:
    """A row-level copy (Relation's constructor copies each row dict)."""
    return Relation(relation.schema, relation, validate=False)


@dataclass
class CacheStats:
    """Hit/miss counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """LRU cache of source-query results, bounded by total cached tuples."""

    def __init__(self, max_tuples: int = 100_000):
        if max_tuples <= 0:
            raise ValueError("max_tuples must be positive")
        self.max_tuples = max_tuples
        self._entries: OrderedDict[CacheKey, Relation] = OrderedDict()
        self._tuples = 0
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cached_tuples(self) -> int:
        with self._lock:
            return self._tuples

    # ------------------------------------------------------------------
    def get(self, source: str, condition: Condition, attributes: frozenset
            ) -> Relation | None:
        key = (source, condition, frozenset(attributes))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            # Defensive copy: handing out the stored relation by reference
            # would let a caller mutating its rows corrupt every later hit.
            return _copy_relation(entry)

    def put(self, source: str, condition: Condition, attributes: frozenset,
            result: Relation) -> None:
        key = (source, condition, frozenset(attributes))
        # Copy outside the lock (the expensive part); the caller keeps
        # the original and may mutate it after we return.
        size = len(result)
        if size > self.max_tuples:
            return  # larger than the whole cache: never admit
        stored = _copy_relation(result)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._tuples -= len(old)
            self._entries[key] = stored
            self._tuples += size
            while self._tuples > self.max_tuples and self._entries:
                __, evicted = self._entries.popitem(last=False)
                self._tuples -= len(evicted)
                self.stats.evictions += 1

    def invalidate(self, source: str | None = None) -> None:
        """Drop everything (or everything for one source)."""
        with self._lock:
            if source is None:
                self._entries.clear()
                self._tuples = 0
                return
            keys = [k for k in self._entries if k[0] == source]
            for key in keys:
                self._tuples -= len(self._entries.pop(key))
