"""Mediator plan algebra, cost model, feasibility checking and execution."""

from repro.plans.cost import (
    INFINITE_COST,
    BottleneckCostModel,
    CostModel,
    count_concrete,
    enumerate_concrete,
)
from repro.plans.execute import (
    ExecutionReport,
    Executor,
    FailoverTarget,
    reference_answer,
)
from repro.plans.async_exec import AsyncExecutor
from repro.plans.coalesce import CoalesceStats, RequestCoalescer
from repro.plans.feasible import FeasibilityReport, validate_plan
from repro.plans.parallel import ParallelExecutor
from repro.plans.retry import RetryPolicy
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
    download_plan,
    make_choice,
    sp,
)
from repro.plans.cache import CacheStats, ResultCache
from repro.plans.printer import explain, explain_dict, to_paper_notation
from repro.plans.serialize import (
    condition_from_dict,
    condition_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    query_from_dict,
    query_to_dict,
)

__all__ = [
    "Plan",
    "SourceQuery",
    "Postprocess",
    "UnionPlan",
    "IntersectPlan",
    "ChoicePlan",
    "sp",
    "make_choice",
    "download_plan",
    "CostModel",
    "BottleneckCostModel",
    "INFINITE_COST",
    "enumerate_concrete",
    "count_concrete",
    "Executor",
    "ParallelExecutor",
    "AsyncExecutor",
    "RequestCoalescer",
    "CoalesceStats",
    "ExecutionReport",
    "FailoverTarget",
    "RetryPolicy",
    "reference_answer",
    "validate_plan",
    "FeasibilityReport",
    "explain",
    "explain_dict",
    "to_paper_notation",
    "ResultCache",
    "CacheStats",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
    "condition_to_dict",
    "condition_from_dict",
    "query_to_dict",
    "query_from_dict",
]
