"""The mediator plan algebra (Section 3).

A mediator query plan consists of source queries ``SP(C, A, R)`` plus
postprocessing at the mediator: selection, projection, union and
intersection.  We also carry the paper's **Choice** operator
(Section 5.3): a node standing for a set of alternative plans, resolved
later by the cost module.

Plan nodes are immutable and hashable.  ``None`` plays the role of the
paper's ∅ ("no feasible plan") throughout the planners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.conditions.tree import TRUE, Condition
from repro.errors import PlanExecutionError


class Plan:
    """Abstract base of all plan nodes."""

    __slots__ = ()

    #: Output attributes of the plan (set by subclasses as a property).
    @property
    def attributes(self) -> frozenset[str]:
        raise NotImplementedError

    @property
    def children(self) -> tuple["Plan", ...]:
        return ()

    def source_queries(self) -> Iterator["SourceQuery"]:
        """All source-query leaves of this plan (Choice branches included)."""
        for child in self.children:
            yield from child.source_queries()

    def sources(self) -> frozenset[str]:
        """Names of every source this plan (or any Choice branch) touches.

        Failover uses this to skip alternatives that depend on a source
        already known to be down.
        """
        return frozenset(sq.source for sq in self.source_queries())

    @property
    def is_concrete(self) -> bool:
        """True when no Choice node remains anywhere in the plan."""
        return all(child.is_concrete for child in self.children)

    def describe(self, indent: int = 0) -> str:
        """A readable multi-line rendering (see also plans.printer)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class SourceQuery(Plan):
    """``SP(condition, attributes, source)`` executed *at the source*."""

    condition: Condition
    attrs: frozenset[str]
    source: str

    @property
    def attributes(self) -> frozenset[str]:
        return self.attrs

    def source_queries(self) -> Iterator["SourceQuery"]:
        yield self

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        return (
            f"{pad}SourceQuery[{self.source}]({self.condition} "
            f"-> {{{', '.join(sorted(self.attrs))}}})"
        )


@dataclass(frozen=True)
class Postprocess(Plan):
    """``SP(condition, attributes, input)`` evaluated *at the mediator*.

    Applies σ_condition then π_attributes to the input plan's result --
    the paper's nested-SP notation, e.g.
    ``SP(n2, A, SP(n1, A ∪ Attr(n2), R))``.
    """

    condition: Condition
    attrs: frozenset[str]
    input: Plan

    def __post_init__(self) -> None:
        needed = frozenset().union(
            self.attrs, () if self.condition.is_true else self.condition.attributes()
        )
        missing = needed - self.input.attributes
        if missing:
            raise PlanExecutionError(
                f"postprocessing needs attributes {sorted(missing)} that the "
                f"input plan does not produce"
            )

    @property
    def attributes(self) -> frozenset[str]:
        return self.attrs

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.input,)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        cond = "true" if self.condition.is_true else str(self.condition)
        return (
            f"{pad}Postprocess(σ {cond} ; π {{{', '.join(sorted(self.attrs))}}})\n"
            + self.input.describe(indent + 1)
        )


class _Combination(Plan):
    """Shared base of Union / Intersect (same-attribute n-ary nodes)."""

    __slots__ = ("_children", "_hash")
    op_name = ""

    def __init__(self, children: Sequence[Plan]):
        children = tuple(children)
        if len(children) < 2:
            raise PlanExecutionError(
                f"{self.op_name} requires at least two inputs, got {len(children)}"
            )
        first = children[0].attributes
        for child in children[1:]:
            if child.attributes != first:
                raise PlanExecutionError(
                    f"{self.op_name} inputs must produce the same attributes: "
                    f"{sorted(first)} vs {sorted(child.attributes)}"
                )
        object.__setattr__(self, "_children", children)

    def __setattr__(self, name, value):
        raise AttributeError("plan nodes are immutable")

    @property
    def attributes(self) -> frozenset[str]:
        return self._children[0].attributes

    @property
    def children(self) -> tuple[Plan, ...]:
        return self._children

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.op_name}"]
        lines.extend(child.describe(indent + 1) for child in self._children)
        return "\n".join(lines)

    def _key(self):
        return (self.op_name, self._children)

    def __eq__(self, other):
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self):
        h = getattr(self, "_hash", None)
        if h is None:
            h = hash(self._key())
            object.__setattr__(self, "_hash", h)
        return h


class UnionPlan(_Combination):
    """Mediator union of same-attribute sub-results (∪)."""

    __slots__ = ()
    op_name = "Union"


class IntersectPlan(_Combination):
    """Mediator intersection of same-attribute sub-results (∩)."""

    __slots__ = ()
    op_name = "Intersect"


class ChoicePlan(_Combination):
    """The paper's Choice operator: alternative plans for the same query.

    Resolved by the cost module (:func:`repro.plans.cost.resolve`); it
    never reaches the executor.
    """

    __slots__ = ()
    op_name = "Choice"

    def __init__(self, alternatives: Sequence[Plan]):
        alternatives = tuple(alternatives)
        if len(alternatives) == 1:
            # A Choice of one is that plan; callers use `make_choice`.
            raise PlanExecutionError("Choice requires at least two alternatives")
        super().__init__(alternatives)

    @property
    def is_concrete(self) -> bool:
        return False


def make_choice(alternatives: Sequence[Plan]) -> Plan | None:
    """Build a Choice, collapsing singletons; None for no alternatives (∅)."""
    alternatives = [p for p in alternatives if p is not None]
    if not alternatives:
        return None
    # Deduplicate identical alternatives.
    unique: list[Plan] = []
    seen: set = set()
    for plan in alternatives:
        if plan not in seen:
            seen.add(plan)
            unique.append(plan)
    if len(unique) == 1:
        return unique[0]
    return ChoicePlan(unique)


def sp(condition: Condition, attributes, input_or_source) -> Plan:
    """The paper's ``SP(C, A, X)``: source query or mediator postprocessing.

    ``X`` a source name (str) gives a :class:`SourceQuery`; ``X`` a plan
    gives mediator postprocessing.  A TRUE condition with unchanged
    attributes collapses to the input plan.
    """
    attrs = frozenset(attributes)
    if isinstance(input_or_source, str):
        return SourceQuery(condition, attrs, input_or_source)
    plan: Plan = input_or_source
    if condition.is_true and attrs == plan.attributes:
        return plan
    return Postprocess(condition, attrs, plan)


def download_plan(condition: Condition, attributes, source: str) -> Plan:
    """The EPG/IPG download option: ``SP(C, A, SP(true, A ∪ Attr(C), R))``."""
    attrs = frozenset(attributes)
    fetch = attrs | (frozenset() if condition.is_true else condition.attributes())
    inner = SourceQuery(TRUE, fetch, source)
    return sp(condition, attrs, inner)
