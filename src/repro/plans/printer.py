"""Plan rendering: compact one-line paper notation and explain trees.

``to_paper_notation`` renders plans the way the paper writes them, e.g.
``SP(n2, A, SP(n1, A ∪ Attr(n2), R)) ∩ SP(c1, A, R)`` becomes
``SP(color = 'red' or color = 'black', {model, year}, SP(make = 'BMW' and
price < 40000, {color, model, year}, R))``.
"""

from __future__ import annotations

from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)


def _attrs(attributes: frozenset[str]) -> str:
    return "{" + ", ".join(sorted(attributes)) + "}"


def to_paper_notation(plan: Plan | None) -> str:
    """One-line rendering in the paper's SP / ∩ / ∪ / Choice notation."""
    if plan is None:
        return "∅"
    if isinstance(plan, SourceQuery):
        return f"SP({plan.condition}, {_attrs(plan.attrs)}, {plan.source})"
    if isinstance(plan, Postprocess):
        inner = to_paper_notation(plan.input)
        return f"SP({plan.condition}, {_attrs(plan.attrs)}, {inner})"
    if isinstance(plan, UnionPlan):
        return "(" + " ∪ ".join(to_paper_notation(c) for c in plan.children) + ")"
    if isinstance(plan, IntersectPlan):
        return "(" + " ∩ ".join(to_paper_notation(c) for c in plan.children) + ")"
    if isinstance(plan, ChoicePlan):
        return "Choice(" + ", ".join(to_paper_notation(c) for c in plan.children) + ")"
    raise TypeError(f"unknown plan node {type(plan).__name__}")


def explain(plan: Plan | None, cost_model=None) -> str:
    """Multi-line tree rendering; annotates source queries with estimated
    result sizes when a cost model is supplied."""
    if plan is None:
        return "∅ (no feasible plan)"
    lines: list[str] = []
    _explain(plan, 0, lines, cost_model)
    return "\n".join(lines)


def explain_dict(plan: Plan | None, cost_model=None) -> dict:
    """A structured (JSON-safe) explain tree for tooling.

    Each node carries ``node``, ``attributes`` and, where applicable,
    ``condition``; source queries get ``source``, ``estimated_rows`` and
    ``estimated_cost`` when a cost model is supplied; the root carries
    ``total_cost``.
    """
    if plan is None:
        return {"node": "empty"}
    out = _explain_node(plan, cost_model)
    if cost_model is not None:
        out["total_cost"] = cost_model.cost(plan)
    return out


def _explain_node(plan: Plan, cost_model) -> dict:
    if isinstance(plan, SourceQuery):
        node: dict = {
            "node": "source_query",
            "source": plan.source,
            "condition": str(plan.condition),
            "attributes": sorted(plan.attrs),
        }
        if cost_model is not None:
            stats = cost_model.stats.get(plan.source)
            if stats is not None:
                node["estimated_rows"] = stats.estimated_rows(plan.condition)
            node["estimated_cost"] = cost_model.source_query_cost(plan)
        return node
    if isinstance(plan, Postprocess):
        return {
            "node": "postprocess",
            "condition": str(plan.condition),
            "attributes": sorted(plan.attrs),
            "input": _explain_node(plan.input, cost_model),
        }
    kind = {UnionPlan: "union", IntersectPlan: "intersect",
            ChoicePlan: "choice"}.get(type(plan), type(plan).__name__)
    return {
        "node": kind,
        "attributes": sorted(plan.attributes),
        "children": [_explain_node(child, cost_model) for child in plan.children],
    }


def _explain(plan: Plan, depth: int, lines: list[str], cost_model) -> None:
    pad = "  " * depth
    if isinstance(plan, SourceQuery):
        note = ""
        if cost_model is not None:
            stats = cost_model.stats.get(plan.source)
            if stats is not None:
                note = f"   -- est. {stats.estimated_rows(plan.condition):.1f} rows"
        lines.append(
            f"{pad}SourceQuery[{plan.source}] σ({plan.condition}) "
            f"π{_attrs(plan.attrs)}{note}"
        )
        return
    if isinstance(plan, Postprocess):
        cond = "true" if plan.condition.is_true else str(plan.condition)
        lines.append(f"{pad}Mediator σ({cond}) π{_attrs(plan.attrs)}")
        _explain(plan.input, depth + 1, lines, cost_model)
        return
    label = type(plan).op_name if hasattr(type(plan), "op_name") else type(plan).__name__
    lines.append(f"{pad}{label}")
    for child in plan.children:
        _explain(child, depth + 1, lines, cost_model)
