"""The paper's cost model (Section 6.2, Eq. 1) and Choice resolution.

``cost(plan) = Σ over source queries sq of  k1 + k2 * |result(sq)|``

k1 models the per-query overhead (connection, form round trip, source
work proportional to using an index), k2 the per-result-tuple transfer
and postprocessing cost.  Result sizes come from the source's table
statistics at planning time, and from the meter at execution time.

Because the model is additive over source queries, a Choice node can be
resolved bottom-up: the cheapest alternative of each Choice is optimal
independently of its context.  This is exactly why pruning rule PR2
("prune locally sub-optimal plans") is safe.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping

from repro.data.stats import TableStats
from repro.errors import PlanExecutionError
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)

#: Cost assigned to infeasible / missing plans (the paper's "infeasible
#: plans are deemed the worst").
INFINITE_COST = math.inf


@dataclass(frozen=True)
class CostModel:
    """Eq. 1 with per-source statistics.

    ``stats`` maps source name -> :class:`TableStats`.  ``k1``/``k2``
    are the paper's constants; they "depend on the source referred to by
    the target query", so per-source overrides are supported.

    Per-query costs are combined **additively** (Eq. 1's Σ), which is
    what makes all three pruning rules sound and the MCSC combination
    step decomposable.  Section 7 claims GenCompact adapts to other cost
    models; :class:`BottleneckCostModel` below is one such adaptation
    and advertises which pruning rules remain sound through the
    ``pr1_sound`` / ``aggregate_kind`` attributes the planners consult.
    """

    stats: Mapping[str, TableStats]
    k1: float = 100.0
    k2: float = 1.0
    per_source: Mapping[str, tuple[float, float]] | None = None

    #: How per-query costs combine: "sum" (Eq. 1) or "max" (bottleneck).
    aggregate_kind: str = "sum"
    #: Is PR1 ("pure plan beats every impure plan") sound for this model?
    pr1_sound: bool = True

    def constants_for(self, source: str) -> tuple[float, float]:
        if self.per_source and source in self.per_source:
            return self.per_source[source]
        return (self.k1, self.k2)

    def _aggregate(self, costs) -> float:
        return sum(costs)

    # ------------------------------------------------------------------
    def source_query_cost(self, query: SourceQuery) -> float:
        stats = self.stats.get(query.source)
        if stats is None:
            raise PlanExecutionError(
                f"no statistics registered for source {query.source!r}"
            )
        k1, k2 = self.constants_for(query.source)
        return k1 + k2 * stats.estimated_rows(query.condition)

    def cost(self, plan: Plan | None) -> float:
        """Estimated cost; Choice nodes contribute their cheapest branch."""
        if plan is None:
            return INFINITE_COST
        if isinstance(plan, SourceQuery):
            return self.source_query_cost(plan)
        if isinstance(plan, ChoicePlan):
            return min(self.cost(alt) for alt in plan.children)
        return self._aggregate(self.cost(child) for child in plan.children)

    def resolve(self, plan: Plan | None) -> Plan | None:
        """Replace every Choice by its cheapest branch (fully concrete)."""
        if plan is None:
            return None
        if isinstance(plan, SourceQuery):
            return plan
        if isinstance(plan, ChoicePlan):
            best = min(plan.children, key=self.cost)
            return self.resolve(best)
        if isinstance(plan, Postprocess):
            return Postprocess(plan.condition, plan.attrs, self.resolve(plan.input))
        if isinstance(plan, UnionPlan):
            return UnionPlan([self.resolve(c) for c in plan.children])
        if isinstance(plan, IntersectPlan):
            return IntersectPlan([self.resolve(c) for c in plan.children])
        raise PlanExecutionError(f"cannot resolve plan node {type(plan).__name__}")

    def cheaper(self, left: Plan | None, right: Plan | None) -> Plan | None:
        """The cheaper of two (possibly missing) plans -- PR2's mincost."""
        if left is None:
            return right
        if right is None:
            return left
        return left if self.cost(left) <= self.cost(right) else right


def enumerate_concrete(plan: Plan | None, limit: int = 100000) -> Iterator[Plan]:
    """Every concrete plan a Choice-bearing plan stands for.

    This is GenModular's plan *set* made explicit; the optimality-parity
    tests minimize over it.  Raises :class:`PlanExecutionError` when more
    than ``limit`` plans would be produced.
    """
    if plan is None:
        return
    count = 0
    for concrete in _expand(plan):
        count += 1
        if count > limit:
            raise PlanExecutionError(f"more than {limit} concrete plans")
        yield concrete


@dataclass(frozen=True)
class BottleneckCostModel(CostModel):
    """Response-time costing: the plan's queries run in parallel.

    cost(plan) = max over source queries of ``k1 + k2 * |result(sq)|``.

    This model changes which pruning rules are safe:

    * **PR1 is UNSOUND**: for a disjunctive query, each branch of a
      union plan retrieves a *subset* of the pure plan's rows, so the
      union's bottleneck can be strictly cheaper than the pure plan.
      The model advertises ``pr1_sound=False`` and IPG then keeps
      searching past a feasible pure plan.
    * PR2/PR3 remain sound (``max`` is monotone in every component, so
      swapping a sub-plan for a cheaper-or-equal one covering at least
      as much never hurts).
    * The MCSC combination step becomes a *min-max* cover, solved
      exactly by :func:`repro.planners.mcsc.solve_minmax` (IPG switches
      on ``aggregate_kind``).
    """

    aggregate_kind: str = "max"
    pr1_sound: bool = False

    def _aggregate(self, costs) -> float:
        return max(costs, default=0.0)


def count_concrete(plan: Plan | None) -> int:
    """How many concrete plans a Choice-bearing plan stands for.

    Computed by the obvious product/sum recursion; this is the size of
    GenModular's plan space for a CT without materializing it (used by
    the search-space experiment E4).
    """
    if plan is None:
        return 0
    if isinstance(plan, SourceQuery):
        return 1
    if isinstance(plan, ChoicePlan):
        return sum(count_concrete(alt) for alt in plan.children)
    out = 1
    for child in plan.children:
        out *= count_concrete(child)
    return out


def _expand(plan: Plan) -> Iterator[Plan]:
    if isinstance(plan, SourceQuery):
        yield plan
        return
    if isinstance(plan, ChoicePlan):
        for alternative in plan.children:
            yield from _expand(alternative)
        return
    if isinstance(plan, Postprocess):
        for inner in _expand(plan.input):
            yield Postprocess(plan.condition, plan.attrs, inner)
        return
    if isinstance(plan, (UnionPlan, IntersectPlan)):
        cls = type(plan)
        for combo in product(*[list(_expand(c)) for c in plan.children]):
            yield cls(list(combo))
        return
    raise PlanExecutionError(f"cannot expand plan node {type(plan).__name__}")
