"""Minimal-answer mode: prune subsumed Union branches from a plan.

Disjunctive queries plan into Union nodes, and planners routinely emit
branches whose row sets are *contained* in a sibling's -- the paper's
rewrite space happily produces ``SP(a, ...) ∪ SP(a and b, ...)`` even
though the second branch can never contribute a row the first does not
already return.  Johnson's *Computing only minimal answers in
disjunctive deductive databases* makes the same observation for
disjunctive answers: the non-minimal members of an answer set are
redundant, and computing them is pure waste.  Here the waste is
concrete -- every redundant Union branch is one or more round-trips to
an autonomous Internet source.

:func:`prune_subsumed` removes a Union branch when a sibling *provably*
returns a superset of its rows.  The proof is syntactic and sound, never
complete:

* both branches must be **selection towers** over the *same* source --
  a chain of ``Postprocess`` selections/projections over one
  ``SourceQuery`` (anything containing a nested Union/Intersect/Choice
  is left alone);
* Union already guarantees both branches produce identical output
  attributes, so the row sets are ``π_A(σ_c(R))`` for the two effective
  conditions, and containment reduces to condition implication;
* :func:`condition_implies` decides implication with a sound recursive
  tableau over the connectors plus value-level implication between
  atoms (``price <= 100`` implies ``price <= 200``; ``make = 'BMW'``
  implies ``make != 'Audi'``; ``a in (1, 2)`` implies ``a <= 5``).

Because implication is checked on the *bound* constants, pruning is an
execution-time step (:class:`~repro.mediator.Mediator` applies it per
ask under ``minimal_answers=True``): a pruned plan must never be stored
as a template, since rebinding the constants can invalidate the very
implication that justified the prune.
"""

from __future__ import annotations

from repro.conditions.tree import And, Condition
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)

#: Refuse implication checks beyond this many nodes per side (the check
#: is worst-case quadratic in the tree sizes; plans are tiny in practice).
MAX_IMPLICATION_NODES = 256


def _ordered(a, b) -> bool:
    """Can ``a`` and ``b`` be compared with <= without a TypeError?"""
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, str) != isinstance(b, str):
        return False
    return isinstance(a, (int, float, str)) and isinstance(b, (int, float, str))


def atom_implies(a, b) -> bool:
    """Does satisfying atom ``a`` imply satisfying atom ``b``?  Sound:
    only ``True`` when the implication holds for every row."""
    from repro.conditions.atoms import Op

    if a == b:
        return True
    if a.attribute != b.attribute:
        return False
    av, bv = a.value, b.value
    if a.op is Op.IN:
        # a in (v1..vk) implies b  iff  every vi (as an equality) does.
        from repro.conditions.atoms import Atom

        return all(
            atom_implies(Atom(a.attribute, Op.EQ, v), b) for v in av
        )
    if a.op is Op.EQ:
        # The row's value *is* av: evaluate b at av directly.
        if b.op is Op.EQ:
            return av == bv
        if b.op is Op.NE:
            return av != bv
        if b.op is Op.IN:
            return isinstance(bv, tuple) and av in bv
        if b.op is Op.CONTAINS:
            return (
                isinstance(av, str) and isinstance(bv, str)
                and bv.lower() in av.lower()
            )
        if not _ordered(av, bv):
            return False
        return {
            Op.LT: av < bv, Op.LE: av <= bv,
            Op.GT: av > bv, Op.GE: av >= bv,
        }[b.op]
    if a.op in (Op.LT, Op.LE):
        if not _ordered(av, bv):
            return False
        if b.op is Op.LE:
            return av <= bv
        if b.op is Op.LT:
            # v < av <= bv  or  v <= av < bv: both give v < bv.
            return av <= bv if a.op is Op.LT else av < bv
        if b.op is Op.NE:
            # Everything below av is != bv when bv sits at/above the bound.
            return bv > av or (bv == av and a.op is Op.LT)
        return False
    if a.op in (Op.GT, Op.GE):
        if not _ordered(av, bv):
            return False
        if b.op is Op.GE:
            return av >= bv
        if b.op is Op.GT:
            # v > av >= bv  or  v >= av > bv: both give v > bv.
            return av >= bv if a.op is Op.GT else av > bv
        if b.op is Op.NE:
            return bv < av or (bv == av and a.op is Op.GT)
        return False
    if a.op is Op.CONTAINS:
        # "dreams of x" contains-implies every substring of the needle.
        return (
            b.op is Op.CONTAINS
            and isinstance(av, str) and isinstance(bv, str)
            and bv.lower() in av.lower()
        )
    # NE implies nothing but itself (handled by the a == b fast path).
    return False


def condition_implies(a: Condition, b: Condition) -> bool:
    """Does every row satisfying ``a`` satisfy ``b``?  Sound, incomplete:
    a ``True`` answer is a proof; ``False`` means "could not prove"."""
    if a.size() > MAX_IMPLICATION_NODES or b.size() > MAX_IMPLICATION_NODES:
        return False
    return _implies(a, b)


def _implies(a: Condition, b: Condition) -> bool:
    if b.is_true:
        return True
    if a.is_true:
        return False
    if a.is_or:
        # A disjunction implies b iff every disjunct does.
        return all(_implies(child, b) for child in a.children)
    if b.is_and:
        # a implies a conjunction iff it implies every conjunct.
        return all(_implies(a, child) for child in b.children)
    if b.is_or and any(_implies(a, child) for child in b.children):
        return True
    if a.is_and:
        # A conjunction implies b when some single conjunct already does.
        return any(_implies(child, b) for child in a.children)
    if a.is_leaf and b.is_leaf:
        return atom_implies(a.atom, b.atom)
    return False


# ----------------------------------------------------------------------
# Branch profiles and Union pruning
# ----------------------------------------------------------------------

def branch_profile(plan: Plan) -> tuple[str, Condition] | None:
    """``(source, effective condition)`` of a selection tower, or None.

    A tower is a chain of Postprocess nodes over one SourceQuery; its
    row set is ``π_A(σ_c(R))`` where ``c`` conjoins every condition on
    the chain (Postprocess guarantees each condition's attributes are
    available where it is applied, so σ/π commute into this form).
    """
    conditions: list[Condition] = []
    node = plan
    while isinstance(node, Postprocess):
        if not node.condition.is_true:
            conditions.append(node.condition)
        node = node.input
    if not isinstance(node, SourceQuery):
        return None
    if not node.condition.is_true:
        conditions.append(node.condition)
    if not conditions:
        from repro.conditions.tree import TRUE

        return node.source, TRUE
    if len(conditions) == 1:
        return node.source, conditions[0]
    return node.source, And(conditions)


def branch_subsumes(keeper: Plan, candidate: Plan) -> bool:
    """Is ``candidate``'s row set provably contained in ``keeper``'s?

    Union guarantees equal output attributes, so containment holds when
    both are towers over one source and the candidate's effective
    condition implies the keeper's.
    """
    kept = branch_profile(keeper)
    cand = branch_profile(candidate)
    if kept is None or cand is None or kept[0] != cand[0]:
        return False
    return condition_implies(cand[1], kept[1])


def prune_subsumed(plan: Plan) -> tuple[Plan, int]:
    """A row-set-equivalent plan with subsumed Union branches removed.

    Returns ``(pruned_plan, branches_dropped)``; the input plan is
    untouched (plan nodes are immutable), and nodes are rebuilt only on
    the paths where something was actually dropped.
    """
    dropped = [0]
    pruned = _prune(plan, dropped)
    return pruned, dropped[0]


def _prune(plan: Plan, dropped: list[int]) -> Plan:
    if isinstance(plan, SourceQuery):
        return plan
    if isinstance(plan, Postprocess):
        inner = _prune(plan.input, dropped)
        if inner is plan.input:
            return plan
        return Postprocess(plan.condition, plan.attrs, inner)
    if isinstance(plan, (IntersectPlan, ChoicePlan)):
        children = [_prune(child, dropped) for child in plan.children]
        if all(new is old for new, old in zip(children, plan.children)):
            return plan
        return type(plan)(children)
    if isinstance(plan, UnionPlan):
        children = [_prune(child, dropped) for child in plan.children]
        kept = _minimal_branches(children, dropped)
        if len(kept) == 1:
            return kept[0]
        if len(kept) == len(plan.children) and all(
            new is old for new, old in zip(kept, plan.children)
        ):
            return plan
        return UnionPlan(kept)
    return plan


def _minimal_branches(children: list[Plan], dropped: list[int]) -> list[Plan]:
    """The minimal sub-list of Union branches covering the same rows.

    A branch goes when a *different* branch provably covers it; between
    mutually-subsuming (equivalent) branches the earliest survives, so
    the result never empties and is deterministic in the input order.
    """
    kept: list[Plan] = []
    for index, child in enumerate(children):
        redundant = False
        for other_index, other in enumerate(children):
            if other_index == index:
                continue
            if branch_subsumes(other, child) and (
                other_index < index or not branch_subsumes(child, other)
            ):
                redundant = True
                break
        if redundant:
            dropped[0] += 1
        else:
            kept.append(child)
    return kept
