"""Parallel plan execution: concurrent fan-out over independent branches.

The paper's sources are autonomous Internet sites, so the dominant
execution cost is round-trips -- and the serial
:class:`~repro.plans.execute.Executor` pays them one after another: a
Union over five wrappers is five sequential waits.  The children of a
Union/Intersect node are *independent* (no data flows between them),
which makes them the natural unit of concurrency.

:class:`ParallelExecutor` is the serial executor with exactly one
method overridden: combination nodes fan their children out on a
bounded thread pool.  Everything else -- query fixing, caching, retry
with backoff, mirror failover, execution-time Choice resolution -- is
inherited unchanged and runs *per branch*, concurrently:

* retries back off inside the branch's own thread, never stalling the
  siblings;
* a failover re-plan executes in the branch that needed it;
* the shared :class:`~repro.plans.execute._ExecutionContext` keeps the
  attempt/retry/failover accounting and the plan-wide retry budget
  exact under contention (its counters are lock-guarded).

Two throttles bound the concurrency:

* ``max_workers`` caps the executor's total in-flight branches.  The
  pool is never over-submitted: a branch is handed to the pool only
  when a worker slot is free, otherwise the submitting thread runs it
  **inline**.  Nested combination nodes therefore can never deadlock
  the pool -- a worker that cannot offload its sub-branches simply
  executes them itself (work keeps moving even at ``max_workers=1``).
* each :class:`~repro.source.source.CapabilitySource` enforces its own
  ``max_concurrency`` with a semaphore, so however wide the plan fans
  out, no wrapper sees more simultaneous calls than it declared.

Determinism: results are combined in child order and each branch's
computation is the serial one, so the *answer* is identical to serial
execution (the parity battery in ``tests/test_parallel_parity.py``
locks this down).  What legitimately varies with thread scheduling is
the interleaving of side effects -- which call consumes which draw of
a shared seeded :class:`~repro.source.faults.FaultInjector`, and the
resulting retry counts.  Seeded experiments that must be bit-identical
across runs should stay serial or give each source its own injector.
"""

from __future__ import annotations

import logging
import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Mapping

from repro.data.relation import Relation
from repro.observability.trace import Span, get_tracer
from repro.plans.execute import Executor, _ExecutionContext
from repro.plans.nodes import IntersectPlan, Plan, UnionPlan
from repro.source.source import CapabilitySource

logger = logging.getLogger(__name__)


class ParallelExecutor(Executor):
    """A drop-in :class:`Executor` that fans combination nodes out.

    Construct it with the same arguments as the serial executor plus
    ``max_workers``.  The thread pool is created lazily on the first
    parallel opportunity and lives until :meth:`close` (the class is a
    context manager); a plan with no Union/Intersect nodes never starts
    a thread.
    """

    def __init__(
        self,
        catalog: Mapping[str, CapabilitySource],
        fix_queries: bool = True,
        cache=None,
        retry_policy=None,
        failover=None,
        cost_model=None,
        max_workers: int = 8,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        super().__init__(
            catalog,
            fix_queries=fix_queries,
            cache=cache,
            retry_policy=retry_policy,
            failover=failover,
            cost_model=cost_model,
        )
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # One token per worker: a branch is submitted to the pool only
        # with a token held, so submitted work never queues behind a
        # blocked parent -- the no-deadlock invariant.
        self._slots = threading.BoundedSemaphore(max_workers)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-parallel",
                )
            return self._pool

    # ------------------------------------------------------------------
    def _execute_combination(
        self, plan: UnionPlan | IntersectPlan, ctx: _ExecutionContext
    ) -> Relation:
        children = plan.children
        if len(children) == 1 or self.max_workers == 1:
            return super()._execute_combination(plan, ctx)

        futures: list[tuple[int, Future]] = []
        errors: list[tuple[int, BaseException]] = []
        parts: list[Relation | None] = [None] * len(children)
        pending = deque(enumerate(children))
        # Capture the submitting thread's span context once: every
        # offloaded branch re-attaches it on the worker side, so spans
        # opened there parent under the combination's span -- one
        # connected trace tree regardless of which thread ran what.
        trace_context = get_tracer().current_context()
        # Interleave offloading and inline work: before each inline
        # branch, hand as many *pending* branches as there are free
        # worker slots to the pool -- slots released by finished workers
        # are re-consumed mid-plan, so a long fan-out keeps every worker
        # busy instead of pre-splitting the children once.  At least one
        # branch per round stays inline, which is what makes nested
        # fan-outs deadlock-free at any pool size.
        while pending:
            while len(pending) > 1 and self._slots.acquire(blocking=False):
                index, child = pending.pop()
                try:
                    future = self._ensure_pool().submit(
                        self._run_branch, child, ctx, trace_context
                    )
                except BaseException:
                    self._slots.release()
                    raise
                futures.append((index, future))
            index, child = pending.popleft()
            try:
                parts[index] = self._execute(child, ctx)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append((index, exc))
        if futures:
            logger.debug(
                "%s fan-out: %d branches offloaded, %d ran inline",
                plan.op_name, len(futures), len(children) - len(futures),
            )
        for index, future in futures:
            try:
                parts[index] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors.append((index, exc))
        if errors:
            # Every branch has finished; surface the earliest child's
            # failure so deterministic errors (capability rejections,
            # infeasibility) match serial execution exactly.
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return self._combine(plan, parts)

    def _run_branch(
        self,
        child: Plan,
        ctx: _ExecutionContext,
        trace_context: Span | None = None,
    ) -> Relation:
        """Worker-side wrapper: execute one branch, then free the slot.

        Re-attaches the submitting thread's span context so the
        branch's spans stay parented in the caller's trace tree.
        """
        try:
            with get_tracer().attach(trace_context):
                return self._execute(child, ctx)
        finally:
            self._slots.release()
