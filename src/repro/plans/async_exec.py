"""Asyncio plan execution: request-coalescing fan-out without threads.

The :class:`~repro.plans.parallel.ParallelExecutor` burns one worker
thread per in-flight source call; at the ROADMAP's millions-of-users
scale that caps out around the pool size.  :class:`AsyncExecutor`
rebuilds execution on :mod:`asyncio` behind the **same blocking
interface**: ``execute``/``execute_with_report`` are ordinary calls,
but inside they submit the plan to a private, lazily started event
loop on one daemon thread, where every source call is a *task* --
thousands of concurrent simulated-latency calls cost coroutine frames,
not threads.

On top of the fan-out the executor layers the execution-time sharing
the serial engines cannot express (see
:mod:`repro.plans.coalesce`):

* **single-flight coalescing** -- identical in-flight ``SP(C, A)``
  calls (canonicalized, so commuted spellings match) share one
  physical call; every logical caller gets its own row-copied answer.
* **disjunct batching** -- pending asks differing only in one equality
  constant merge into one ``SP(c1 or c2 or ..., A + {attr})`` when the
  source's grammar admits it, each caller post-filtering its own
  constant back out.
* **streamed union merge** -- combination children complete in any
  order and the ready *prefix* is folded immediately, so the answer
  accumulates before the slowest source returns while the final
  relation stays byte-identical to serial child-order folding.

Everything else matches the serial executor per branch: query fixing,
result caching, retry with backoff (waited with ``asyncio.sleep``,
never a blocked thread), mirror failover and execution-time Choice
resolution.  Error choice matches the parallel executor: a Union
surfaces its earliest-index child's failure after every branch
settles; an Intersect **cancels** its surviving branches on the first
failure (the result is doomed anyway) and reaps them before raising.

Accounting is exact under sharing: the serial engines diff the global
source meters around the execution, which double-counts when two
concurrent reports overlap one coalesced physical call.  This executor
instead tallies traffic *per execution context at the call site* --
the physical call lands once, on the logical caller that initiated it,
and joiners report ``coalesced_hits``/``batched_hits`` (mirrored to
the metrics registry as ``executor.coalesced_hits`` and
``executor.batched_hits``).

Determinism caveat (same as the parallel executor's): which call
consumes which draw of a *shared* seeded fault injector varies with
task scheduling, and coalescing collapses draws entirely -- seeded
experiments that must be bit-identical should stay serial.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping

from repro.data.relation import Relation
from repro.errors import (
    PlanExecutionError,
    TransientSourceError,
    UnsupportedQueryError,
)
from repro.observability.metrics import get_metrics
from repro.observability.trace import get_tracer, trace_event
from repro.plans.coalesce import RequestCoalescer, flight_key
from repro.plans.execute import (
    ExecutionReport,
    Executor,
    _ExecutionContext,
)
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.plans.retry import RetryPolicy
from repro.source.metering import MeterSnapshot
from repro.source.source import CapabilitySource

logger = logging.getLogger(__name__)

_EMPTY = MeterSnapshot()


@dataclass
class _AsyncExecutionContext(_ExecutionContext):
    """The serial context plus call-site traffic tallies and sharing
    counters -- what makes per-report accounting exact under
    coalescing (the global meters still meter each physical call
    exactly once; they just cannot say *whose* it was)."""

    coalesced_hits: int = 0
    batched_hits: int = 0
    per_source: dict[str, MeterSnapshot] = field(default_factory=dict)

    def tally(self, source: str, **deltas: int) -> None:
        """Attribute source traffic caused by this execution."""
        with self._lock:
            self.per_source[source] = \
                self.per_source.get(source, _EMPTY) + MeterSnapshot(**deltas)

    def add_coalesced(self) -> None:
        with self._lock:
            self.coalesced_hits += 1
        get_metrics().counter("executor.coalesced_hits").inc()

    def add_batched(self) -> None:
        with self._lock:
            self.batched_hits += 1
        get_metrics().counter("executor.batched_hits").inc()


class AsyncExecutor(Executor):
    """A drop-in :class:`Executor` that runs plans on an event loop.

    Construct it with the serial executor's arguments plus the sharing
    knobs; close it (or use it as a context manager) to stop the loop
    thread.  Concurrent ``execute`` calls from any number of threads
    share the one loop -- which is exactly what lets their identical
    in-flight source calls coalesce across requests.
    """

    def __init__(
        self,
        catalog: Mapping[str, CapabilitySource],
        fix_queries: bool = True,
        cache=None,
        retry_policy=None,
        failover=None,
        cost_model=None,
        coalesce: bool = True,
        batch_window: float | None = None,
        batch_max: int = 16,
    ):
        """``coalesce=False`` disables single-flight sharing (each
        logical call pays its own round-trip, as the serial engines
        do).  ``batch_window`` (seconds) enables disjunct batching:
        the first batchable ask waits that long for companions before
        its (possibly merged) call is issued; ``None`` disables it.
        """
        super().__init__(
            catalog,
            fix_queries=fix_queries,
            cache=cache,
            retry_policy=retry_policy,
            failover=failover,
            cost_model=cost_model,
        )
        self.coalesce = coalesce
        self.batch_window = batch_window
        self._coalescer = (
            RequestCoalescer(batch_window=batch_window, batch_max=batch_max)
            if coalesce or batch_window is not None else None
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        self._loop_lock = threading.Lock()

    @property
    def coalesce_stats(self):
        """The coalescer's savings counters (zeros when disabled)."""
        from repro.plans.coalesce import CoalesceStats

        if self._coalescer is None:
            return CoalesceStats()
        return self._coalescer.stats

    # -- event-loop lifecycle ------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._loop_lock:
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever,
                    name="repro-async-loop",
                    daemon=True,
                )
                thread.start()
                self._loop, self._loop_thread = loop, thread
            return self._loop

    def close(self) -> None:
        """Stop the loop thread, cancelling any stragglers (idempotent)."""
        with self._loop_lock:
            loop, self._loop = self._loop, None
            thread, self._loop_thread = self._loop_thread, None
        if loop is None:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._shutdown(), loop
            ).result(timeout=5.0)
        except Exception:  # noqa: BLE001 - best-effort cleanup
            pass
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=5.0)
        loop.close()

    async def _shutdown(self) -> None:
        if self._coalescer is not None:
            self._coalescer.drain()
        tasks = [
            task for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "AsyncExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def pending_task_count(self) -> int:
        """How many tasks the loop is running right now (tests assert 0
        after cancellation -- nothing orphaned)."""
        loop = self._ensure_loop()

        async def count() -> int:
            return len(asyncio.all_tasks()) - 1  # minus this probe

        return asyncio.run_coroutine_threadsafe(count(), loop).result(5.0)

    # -- entry points --------------------------------------------------
    def _new_context(self) -> _AsyncExecutionContext:
        policy = self.retry_policy
        budget = policy.retry_budget if policy is not None else None
        return _AsyncExecutionContext(budget_left=budget)

    def _run(self, plan: Plan, ctx: _AsyncExecutionContext) -> Relation:
        """Submit one plan execution to the loop and block for it."""
        loop = self._ensure_loop()
        tracer = get_tracer()
        token = tracer.current_context()

        async def entry() -> Relation:
            # The cross-thread span handoff, task edition: the caller
            # thread's active span becomes the parent of everything the
            # loop runs for this plan (same idiom as ParallelExecutor's
            # current_context()/attach pair).
            with get_tracer().attach(token):
                return await self._a_execute(plan, ctx)

        return asyncio.run_coroutine_threadsafe(entry(), loop).result()

    def execute(self, plan: Plan) -> Relation:
        return self._run(plan, self._new_context())

    def execute_with_report(self, plan: Plan) -> ExecutionReport:
        """Execute and report -- from this execution's own tallies.

        Unlike the serial engines' global-meter diff (which misattributes
        traffic when concurrent reports overlap -- and under coalescing
        would count one shared physical call in *every* overlapping
        report), the async report is built from the context's call-site
        tallies: each physical call appears in exactly one report, the
        initiating caller's, and joiners carry ``coalesced_hits`` /
        ``batched_hits`` instead.
        """
        ctx = self._new_context()
        started = time.perf_counter()
        result = self._run(plan, ctx)
        duration = time.perf_counter() - started
        per_source = {
            name: delta for name, delta in ctx.per_source.items()
            if delta != _EMPTY
        }
        return ExecutionReport(
            result,
            sum(delta.queries for delta in per_source.values()),
            sum(delta.tuples for delta in per_source.values()),
            attempts=ctx.attempts,
            retries=ctx.retries,
            failovers=ctx.failovers,
            backoff_seconds=ctx.backoff,
            duration_seconds=duration,
            per_source=per_source,
            call_latency=ctx.call_latency.snapshot(),
            coalesced_hits=ctx.coalesced_hits,
            batched_hits=ctx.batched_hits,
        )

    # -- the async tree walk -------------------------------------------
    async def _a_execute(
        self, plan: Plan, ctx: _AsyncExecutionContext
    ) -> Relation:
        if isinstance(plan, ChoicePlan):
            return await self._a_execute_choice(plan, ctx)
        if isinstance(plan, SourceQuery):
            return await self._a_execute_source_query(plan, ctx)
        if isinstance(plan, Postprocess):
            inner = await self._a_execute(plan.input, ctx)
            if plan.condition.is_true:
                return inner.project(plan.attrs)
            return inner.select(plan.condition).project(plan.attrs)
        if isinstance(plan, (UnionPlan, IntersectPlan)):
            if not plan.children:
                raise PlanExecutionError(
                    f"cannot execute a {plan.op_name} plan with no inputs; "
                    f"plans must combine at least one sub-plan"
                )
            return await self._a_execute_combination(plan, ctx)
        raise PlanExecutionError(
            f"cannot execute plan node {type(plan).__name__}"
        )

    async def _a_execute_combination(
        self, plan: UnionPlan | IntersectPlan, ctx: _AsyncExecutionContext
    ) -> Relation:
        """Fan the children out as tasks; stream-merge the ready prefix.

        The merge folds child ``i`` into the accumulator as soon as
        children ``0..i`` have all finished -- results accumulate while
        slower siblings are still in flight, yet the fold order (and so
        the answer, row order included) is exactly serial's.
        """
        children = plan.children
        if len(children) == 1:
            return await self._a_execute(children[0], ctx)
        tracer = get_tracer()
        token = tracer.current_context()

        async def branch(child: Plan) -> Relation:
            with get_tracer().attach(token):
                return await self._a_execute(child, ctx)

        tasks = [asyncio.ensure_future(branch(child)) for child in children]
        index_of = {task: index for index, task in enumerate(tasks)}
        combine = (
            Relation.union if isinstance(plan, UnionPlan)
            else Relation.intersect
        )
        cancel_on_error = isinstance(plan, IntersectPlan)
        parts: list[Relation | None] = [None] * len(tasks)
        settled = [False] * len(tasks)
        errors: list[tuple[int, BaseException]] = []
        merged: Relation | None = None
        merged_through = 0
        pending = set(tasks)
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    index = index_of[task]
                    settled[index] = True
                    try:
                        exc = task.exception()
                    except asyncio.CancelledError as cancelled:
                        exc = cancelled
                    if exc is not None:
                        errors.append((index, exc))
                    else:
                        parts[index] = task.result()
                if errors and cancel_on_error:
                    # An Intersect child failed: the combination cannot
                    # succeed, so stop paying for the survivors.
                    break
                while (
                    not errors
                    and merged_through < len(tasks)
                    and settled[merged_through]
                ):
                    part = parts[merged_through]
                    parts[merged_through] = None
                    merged = part if merged is None \
                        else combine(merged, part)
                    merged_through += 1
        finally:
            if pending:
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
        if errors:
            # Raise the earliest child's failure so deterministic
            # errors match serial execution exactly (the parallel
            # executor's rule).
            errors.sort(key=lambda pair: pair[0])
            raise errors[0][1]
        return merged  # type: ignore[return-value]

    async def _a_execute_choice(
        self, plan: ChoicePlan, ctx: _AsyncExecutionContext
    ) -> Relation:
        if self.cost_model is None:
            raise PlanExecutionError(
                "plan still contains a Choice operator; resolve it with the "
                "cost model before execution (or construct the Executor "
                "with cost_model=... to resolve and fail over at runtime)"
            )
        ranked = sorted(plan.children, key=self.cost_model.cost)
        last_fault: TransientSourceError | None = None
        for index, alternative in enumerate(ranked):
            if ctx.any_failed(
                sq.source for sq in alternative.source_queries()
            ):
                continue
            try:
                return await self._a_execute(alternative, ctx)
            except TransientSourceError as fault:
                trace_event(
                    logger, logging.WARNING,
                    "Choice alternative %d failed (%s); trying the next one",
                    index, fault,
                    event="choice.failover", alternative=index,
                    fault=str(fault),
                )
                last_fault = fault
                ctx.add_failover()
                continue
        if last_fault is not None:
            raise last_fault
        raise PlanExecutionError(
            "every Choice alternative depends on a failed source"
        )

    # -- source queries ------------------------------------------------
    async def _a_execute_source_query(
        self, plan: SourceQuery, ctx: _AsyncExecutionContext
    ) -> Relation:
        tracer = get_tracer()
        task = asyncio.current_task()
        with tracer.span(
            "executor.source_call",
            source=plan.source,
            condition=str(plan.condition),
            worker=task.get_name() if task is not None else "loop",
        ) as span:
            started = time.perf_counter()
            try:
                return await self._a_source_query(plan, ctx, span)
            finally:
                ctx.observe_call(time.perf_counter() - started)

    async def _a_source_query(
        self, plan: SourceQuery, ctx: _AsyncExecutionContext, span
    ) -> Relation:
        source = self._source(plan.source)
        if self.cache is not None:
            cached = self.cache.get(plan.source, plan.condition, plan.attrs)
            if cached is not None:
                trace_event(
                    logger, logging.DEBUG,
                    "cache hit for %s SP(%s)", plan.source, plan.condition,
                    event="cache.hit", source=plan.source,
                    condition=str(plan.condition),
                )
                get_metrics().counter("executor.cache_hits").inc()
                span.set_attributes(cache_hit=True, attempts=0)
                return cached
        coalescer = self._coalescer
        if coalescer is not None and coalescer.batch_window is not None:
            answer = await self._a_try_batched(plan, ctx, span, source)
            if answer is not None:
                return answer
        if coalescer is not None and self.coalesce:
            result, shared = await coalescer.single_flight(
                flight_key(plan.source, plan.condition, plan.attrs),
                lambda: self._a_attempts(plan, ctx, span),
            )
            if shared:
                ctx.add_coalesced()
                span.set_attributes(coalesced=True, rows=len(result))
            return result
        return await self._a_attempts(plan, ctx, span)

    async def _a_try_batched(
        self, plan: SourceQuery, ctx: _AsyncExecutionContext, span, source
    ) -> Relation | None:
        """Offer this call to the disjunct batcher; ``None`` = not
        batched (caller falls through to single flight)."""
        attr = RequestCoalescer.batchable(plan.condition)
        if attr is None:
            return None
        fetch_attrs = plan.attrs | {attr}

        def supports(conditions) -> bool:
            from repro.conditions.tree import disjunction

            return source.supports(disjunction(list(conditions)), fetch_attrs)

        led = False

        async def run_merged(merged_condition) -> Relation:
            nonlocal led
            led = True
            merged_plan = SourceQuery(merged_condition, fetch_attrs,
                                      plan.source)
            return await self._a_attempts(
                merged_plan, ctx, span, fill_cache=False
            )

        merged, role = await self._coalescer.batch_call(
            (plan.source, plan.attrs, attr), plan.condition,
            supports, run_merged,
        )
        if role != "merged":
            return None
        # Post-filter the shared merged answer back down to this
        # caller's own constant; project() builds fresh row dicts, so
        # the result is also isolated from the other callers'.
        answer = merged.select(plan.condition).project(plan.attrs)
        if not led:
            ctx.add_batched()
        span.set_attributes(batched=True, rows=len(answer))
        if self.cache is not None:
            self.cache.put(plan.source, plan.condition, plan.attrs, answer)
        return answer

    async def _a_attempts(
        self, plan: SourceQuery, ctx: _AsyncExecutionContext, span,
        fill_cache: bool = True,
    ) -> Relation:
        """The retry/failover loop for one physical source query --
        the serial loop with every wait turned into ``asyncio.sleep``."""
        source = self._source(plan.source)
        policy = self.retry_policy if self.retry_policy is not None \
            else RetryPolicy.none()
        attempt = 0
        retries = 0
        backoff = 0.0
        while True:
            attempt += 1
            ctx.add_attempt()
            try:
                result = await self._a_submit(source, plan, ctx, fill_cache)
                span.set_attributes(
                    attempts=attempt, retries=retries,
                    backoff_seconds=backoff, rows=len(result),
                )
                return result
            except TransientSourceError as fault:
                if policy.should_retry(attempt) and ctx.take_retry_token():
                    delay = policy.backoff_delay(
                        attempt, key=f"{plan.source}|{plan.condition}",
                        fault=fault,
                    )
                    retries += 1
                    backoff += delay
                    ctx.add_retry(delay)
                    ctx.tally(plan.source, retries=1)
                    source.meter.record_retry()
                    trace_event(
                        logger, logging.DEBUG,
                        "transient failure at %s (%s); retry %d/%d after "
                        "%.3fs", plan.source, fault, attempt,
                        policy.max_attempts - 1, delay,
                        event="retry", source=plan.source, attempt=attempt,
                        delay_seconds=delay, fault=str(fault),
                    )
                    if policy.real_sleep and delay > 0.0:
                        # The async analogue of policy.wait(): backing
                        # off suspends this task only -- the loop (and
                        # every sibling call) keeps running.
                        await asyncio.sleep(delay)
                    continue
                span.set_attributes(
                    attempts=attempt, retries=retries, backoff_seconds=backoff
                )
                ctx.mark_failed(plan.source)
                if self.failover is not None:
                    alternative = self.failover.replan(
                        plan, frozenset(ctx.failed_sources)
                    )
                    if alternative is not None:
                        ctx.add_failover()
                        targets = sorted(
                            {sq.source for sq in alternative.source_queries()}
                        )
                        span.set_attribute("failover_targets", targets)
                        trace_event(
                            logger, logging.WARNING,
                            "failing over %s SP(%s) after %d attempts: %s",
                            plan.source, plan.condition, attempt, fault,
                            event="failover", source=plan.source,
                            attempts=attempt, targets=targets,
                            fault=str(fault),
                        )
                        return await self._a_execute(alternative, ctx)
                raise

    async def _a_submit(
        self, source: CapabilitySource, plan: SourceQuery,
        ctx: _AsyncExecutionContext, fill_cache: bool,
    ) -> Relation:
        """One attempt: fix order, await the source, tally, fill cache."""
        condition = plan.condition
        if self.fix_queries and not condition.is_true:
            condition = source.fix(condition, plan.attrs)
            if condition != plan.condition:
                trace_event(
                    logger, logging.DEBUG,
                    "fixed query order for %s: %s -> %s",
                    plan.source, plan.condition, condition,
                    event="query.fixed", source=plan.source,
                    planned=str(plan.condition), fixed=str(condition),
                )
        try:
            result = await source.execute_async(condition, plan.attrs)
        except UnsupportedQueryError:
            ctx.tally(source.name, rejected=1)
            raise
        except TransientSourceError:
            ctx.tally(source.name, failures=1)
            raise
        trace_event(
            logger, logging.DEBUG,
            "source %s answered SP(%s) with %d tuples",
            plan.source, condition, len(result),
            event="source.answered", source=plan.source,
            condition=str(condition), rows=len(result),
        )
        ctx.tally(source.name, queries=1, tuples=len(result))
        if fill_cache and self.cache is not None:
            self.cache.put(plan.source, plan.condition, plan.attrs, result)
        return result
