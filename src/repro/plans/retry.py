"""Retry policies for plan execution over flaky sources.

A :class:`RetryPolicy` tells the executor how to respond to a
:class:`~repro.errors.TransientSourceError`: how many attempts a single
source query gets, how long to back off between them (exponential, with
**deterministic** jitter so experiment runs are reproducible), and how
many retries a whole plan may spend in total (the retry budget).

The policy applies to transient faults *only*.  Capability rejections
(:class:`~repro.errors.UnsupportedQueryError`) are permanent for a
given query -- resubmitting the same form can only waste the metered
source's goodwill -- so the executor re-raises them immediately,
whatever the policy says.

Backoff is simulated by default: the delay is accounted on the
execution report (``backoff_seconds``) without sleeping, which keeps
tests and benchmarks fast while preserving the numbers a capacity
planner wants.  Pass ``real_sleep=True`` to actually wait.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

from repro.errors import SourceRateLimitError, TransientSourceError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus at most two retries.  ``retry_budget`` caps the *total*
    retries one plan execution may spend across all of its source
    queries (``None`` = unbounded); a plan over many sources cannot
    grind forever even if each individual query stays under
    ``max_attempts``.
    """

    max_attempts: int = 3
    base_backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 5.0
    jitter: float = 0.1
    retry_budget: int | None = None
    seed: int = 0
    real_sleep: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "RetryPolicy":
        """The no-retry policy: one attempt, fail fast."""
        return cls(max_attempts=1, retry_budget=0)

    def should_retry(self, attempt: int) -> bool:
        """May a query that failed on its ``attempt``-th try go again?"""
        return attempt < self.max_attempts

    def backoff_delay(self, attempt: int, key: str = "",
                      fault: TransientSourceError | None = None) -> float:
        """Simulated seconds to wait before retry number ``attempt``.

        Exponential in the attempt number, capped at ``max_backoff``,
        shrunk by up to ``jitter`` using a hash of ``(key, attempt,
        seed)`` -- deterministic across runs and processes (no RNG
        state, no ``PYTHONHASHSEED`` dependence).  A rate-limited fault
        floors the delay at the source's ``retry_after``.
        """
        delay = min(
            self.max_backoff,
            self.base_backoff * self.multiplier ** (attempt - 1),
        )
        if self.jitter > 0.0:
            word = f"{key}:{attempt}:{self.seed}".encode()
            fraction = zlib.crc32(word) / 0xFFFFFFFF
            delay *= 1.0 - self.jitter * fraction
        if isinstance(fault, SourceRateLimitError):
            delay = max(delay, fault.retry_after)
        return delay

    def wait(self, delay: float) -> None:
        """Spend the backoff (really, when ``real_sleep`` is set)."""
        if self.real_sleep and delay > 0.0:
            time.sleep(delay)
