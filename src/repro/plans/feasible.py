"""Feasibility validation of whole plans.

"A mediator plan for the target query is feasible if and only if all of
its source queries are supported" (Section 4).  The planners guarantee
this by construction; this module re-derives it independently so tests
and the mediator can double-check any plan, and so infeasible baseline
plans (e.g. Naive sending the raw query) are detected before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import QueryFixingError
from repro.plans.nodes import ChoicePlan, Plan, SourceQuery
from repro.source.source import CapabilitySource


@dataclass
class FeasibilityReport:
    """Outcome of validating a plan against the catalog."""

    feasible: bool
    unsupported: list[SourceQuery] = field(default_factory=list)
    unfixable: list[SourceQuery] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.feasible


def validate_plan(
    plan: Plan | None,
    catalog: Mapping[str, CapabilitySource],
    require_fixable: bool = True,
) -> FeasibilityReport:
    """Check every source query of ``plan`` is supported (and fixable).

    ``require_fixable`` additionally verifies that each planned condition
    can be reordered into a form the *native* (order-sensitive)
    description accepts -- the executable standard, not just the
    commutation-closed planning standard.
    """
    if plan is None:
        return FeasibilityReport(False)
    unsupported: list[SourceQuery] = []
    unfixable: list[SourceQuery] = []
    for query in _concrete_source_queries(plan):
        source = catalog.get(query.source)
        if source is None or not source.supports(query.condition, query.attrs):
            unsupported.append(query)
            continue
        if require_fixable and not query.condition.is_true:
            try:
                source.fix(query.condition, query.attrs)
            except QueryFixingError:
                unfixable.append(query)
    feasible = not unsupported and not unfixable
    return FeasibilityReport(feasible, unsupported, unfixable)


def _concrete_source_queries(plan: Plan):
    """Source queries of a plan; Choice branches must each be feasible,
    so all branches' queries are validated."""
    if isinstance(plan, SourceQuery):
        yield plan
        return
    if isinstance(plan, ChoicePlan):
        for alternative in plan.children:
            yield from _concrete_source_queries(alternative)
        return
    for child in plan.children:
        yield from _concrete_source_queries(child)
