"""JSON-friendly serialization of conditions, queries and plans.

A mediator deployment wants to log chosen plans, ship them between
processes, and cache them on disk.  This module provides stable
dict/JSON round-trips for :class:`Condition`, :class:`TargetQuery` and
every plan node.

The representation is versioned (``"v": 1``) and self-describing; all
``from_*`` functions validate shape and raise
:class:`~repro.errors.ReproError` subclasses on malformed input.
"""

from __future__ import annotations

import json
from typing import Any

from repro.conditions.atoms import Atom, op_from_text
from repro.conditions.tree import TRUE, And, Condition, Leaf, Or
from repro.errors import ConditionError, PlanExecutionError
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.query import TargetQuery

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------

def condition_to_dict(condition: Condition) -> dict:
    """A JSON-safe dict for a condition tree."""
    if condition.is_true:
        return {"kind": "true"}
    if condition.is_leaf:
        atom = condition.atom
        value: Any = atom.value
        if isinstance(value, tuple):
            value = {"tuple": list(value)}
        return {
            "kind": "atom",
            "attribute": atom.attribute,
            "op": atom.op.value,
            "value": value,
        }
    kind = "and" if condition.is_and else "or"
    return {
        "kind": kind,
        "children": [condition_to_dict(child) for child in condition.children],
    }


def condition_from_dict(data: dict) -> Condition:
    """Inverse of :func:`condition_to_dict`."""
    if not isinstance(data, dict) or "kind" not in data:
        raise ConditionError(f"not a serialized condition: {data!r}")
    kind = data["kind"]
    if kind == "true":
        return TRUE
    if kind == "atom":
        try:
            value = data["value"]
            if isinstance(value, dict) and "tuple" in value:
                value = tuple(value["tuple"])
            return Leaf(Atom(data["attribute"], op_from_text(data["op"]), value))
        except KeyError as missing:
            raise ConditionError(f"serialized atom missing {missing}") from None
    if kind in ("and", "or"):
        children = [condition_from_dict(c) for c in data.get("children", [])]
        if len(children) < 2:
            raise ConditionError(f"serialized {kind} needs >= 2 children")
        return And(children) if kind == "and" else Or(children)
    raise ConditionError(f"unknown condition kind {kind!r}")


# ----------------------------------------------------------------------
# Target queries
# ----------------------------------------------------------------------

def query_to_dict(query: TargetQuery) -> dict:
    return {
        "v": FORMAT_VERSION,
        "condition": condition_to_dict(query.condition),
        "attributes": sorted(query.attributes),
        "source": query.source,
    }


def query_from_dict(data: dict) -> TargetQuery:
    try:
        return TargetQuery(
            condition_from_dict(data["condition"]),
            frozenset(data["attributes"]),
            data["source"],
        )
    except KeyError as missing:
        raise ConditionError(f"serialized query missing {missing}") from None


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------

def plan_to_dict(plan: Plan | None) -> dict:
    """A JSON-safe dict for a plan tree (None becomes the paper's ∅)."""
    if plan is None:
        return {"node": "empty"}
    if isinstance(plan, SourceQuery):
        return {
            "node": "source_query",
            "condition": condition_to_dict(plan.condition),
            "attributes": sorted(plan.attrs),
            "source": plan.source,
        }
    if isinstance(plan, Postprocess):
        return {
            "node": "postprocess",
            "condition": condition_to_dict(plan.condition),
            "attributes": sorted(plan.attrs),
            "input": plan_to_dict(plan.input),
        }
    kind = {UnionPlan: "union", IntersectPlan: "intersect",
            ChoicePlan: "choice"}.get(type(plan))
    if kind is None:
        raise PlanExecutionError(
            f"cannot serialize plan node {type(plan).__name__}"
        )
    return {
        "node": kind,
        "children": [plan_to_dict(child) for child in plan.children],
    }


def plan_from_dict(data: dict) -> Plan | None:
    """Inverse of :func:`plan_to_dict` (validates structure)."""
    if not isinstance(data, dict) or "node" not in data:
        raise PlanExecutionError(f"not a serialized plan: {data!r}")
    node = data["node"]
    if node == "empty":
        return None
    try:
        if node == "source_query":
            return SourceQuery(
                condition_from_dict(data["condition"]),
                frozenset(data["attributes"]),
                data["source"],
            )
        if node == "postprocess":
            inner = plan_from_dict(data["input"])
            if inner is None:
                raise PlanExecutionError("postprocess over the empty plan")
            return Postprocess(
                condition_from_dict(data["condition"]),
                frozenset(data["attributes"]),
                inner,
            )
        if node in ("union", "intersect", "choice"):
            children = [plan_from_dict(c) for c in data.get("children", [])]
            if any(child is None for child in children):
                raise PlanExecutionError(f"{node} over the empty plan")
            cls = {"union": UnionPlan, "intersect": IntersectPlan,
                   "choice": ChoicePlan}[node]
            return cls(children)  # type: ignore[arg-type]
    except KeyError as missing:
        raise PlanExecutionError(
            f"serialized {node} plan missing {missing}"
        ) from None
    raise PlanExecutionError(f"unknown plan node kind {node!r}")


# ----------------------------------------------------------------------
# JSON conveniences
# ----------------------------------------------------------------------

def plan_to_json(plan: Plan | None, indent: int | None = None) -> str:
    envelope = {"v": FORMAT_VERSION, "plan": plan_to_dict(plan)}
    return json.dumps(envelope, indent=indent, sort_keys=True)


def plan_from_json(text: str) -> Plan | None:
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanExecutionError(f"invalid plan JSON: {exc}") from None
    if not isinstance(envelope, dict) or envelope.get("v") != FORMAT_VERSION:
        raise PlanExecutionError(
            f"unsupported plan serialization version: {envelope.get('v')!r}"
        )
    return plan_from_dict(envelope["plan"])
