"""Single-flight coalescing and disjunct batching for the async executor.

At internet scale identical work arrives *concurrently*: under a Zipf
constant mix, many in-flight asks name the same ``SP(C, A)`` on the
same source.  The serial and parallel executors pay one round-trip per
logical caller; the :class:`RequestCoalescer` is the execution-time
sharing layer that collapses them:

* **single flight** -- callers whose ``(source, canonical condition,
  attributes)`` key matches an in-flight physical call join it instead
  of issuing their own.  One physical call runs (as its own task, owned
  by the coalescer); every logical caller -- the initiator included --
  receives a row-copied :class:`~repro.data.relation.Relation`, so
  mutating one caller's answer can never leak into another's (the
  ``ResultCache`` copy-on-get discipline, extended to in-flight
  sharing).
* **disjunct batching** -- when several pending asks differ only in the
  constant of one equality atom (``author = 'X'`` vs ``author = 'Y'``)
  and the source's compiled grammar admits disjunctive constants on
  that attribute, the coalescer holds them for a short window and the
  executor issues **one** merged ``SP(X or Y, A + {attr})``, then
  post-filters per caller.  When the grammar refuses the disjunction
  the batch falls back to individual single flights -- never a
  capability error the callers didn't ask for.

The coalescer is **loop-confined**: every method that touches its maps
runs on the executor's event loop, so there are no locks -- the event
loop is the serialization point.  Waiters are refcounted: a flight (or
batch) whose every logical caller was cancelled is itself cancelled,
leaving no orphan task behind.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Sequence

from repro.conditions.atoms import Op
from repro.conditions.canonical import canonicalize
from repro.conditions.tree import Condition, Leaf, disjunction
from repro.data.relation import Relation

#: The coalescing identity of one source query.
FlightKey = tuple[str, Condition, frozenset]
#: The batching identity: source, answer attributes, batched attribute.
BatchKey = tuple[str, frozenset, str]


def flight_key(source: str, condition: Condition,
               attributes: frozenset) -> FlightKey:
    """The single-flight key: commuted spellings share one flight."""
    return (source, canonicalize(condition), attributes)


def _copy_relation(relation: Relation) -> Relation:
    """A row-level copy (the constructor copies each row dict)."""
    return Relation(relation.schema, relation, validate=False)


@dataclass
class CoalesceStats:
    """What the coalescer saved (monotonic; read by tests and X16)."""

    #: Physical calls actually started by single flights.
    flights: int = 0
    #: Logical callers served by joining someone else's flight.
    coalesced_hits: int = 0
    #: Merged disjunctive physical calls issued.
    batches: int = 0
    #: Logical callers folded into a merged batch (followers only).
    batched_hits: int = 0
    #: Batches whose grammar refused the disjunction (fell back).
    batch_fallbacks: int = 0

    def hit_rate(self) -> float:
        """Share of logical calls answered without their own round-trip."""
        shared = self.coalesced_hits + self.batched_hits
        total = self.flights + self.batches + shared
        return shared / total if total else 0.0


class _Flight:
    """One in-flight physical call and its refcounted waiters."""

    __slots__ = ("future", "task", "waiters")

    def __init__(self) -> None:
        self.future: asyncio.Future = \
            asyncio.get_running_loop().create_future()
        self.task: asyncio.Task | None = None
        self.waiters = 0


@dataclass
class _BatchEntry:
    condition: Condition
    future: asyncio.Future
    cancelled: bool = False


@dataclass
class _Batch:
    """Pending asks for one ``(source, attrs, attr)`` awaiting a flush."""

    entries: list[_BatchEntry] = field(default_factory=list)
    flusher: asyncio.Task | None = None
    closed: bool = False


class RequestCoalescer:
    """The async executor's sharing layer (loop-confined, lock-free)."""

    def __init__(self, batch_window: float | None = None,
                 batch_max: int = 16):
        """``batch_window`` is how long (seconds) the first pending ask
        of a batchable shape waits for companions before flushing;
        ``None`` disables batching (single flight still applies).
        ``batch_max`` flushes a batch early once that many asks piled
        up."""
        if batch_max < 2:
            raise ValueError("batch_max must be at least 2")
        self.batch_window = batch_window
        self.batch_max = batch_max
        self.stats = CoalesceStats()
        self._flights: dict[FlightKey, _Flight] = {}
        self._batches: dict[BatchKey, _Batch] = {}

    # -- single flight -------------------------------------------------
    async def single_flight(
        self, key: FlightKey, start: Callable[[], Awaitable[Relation]]
    ) -> tuple[Relation, bool]:
        """Run ``start()`` once per in-flight key; share its answer.

        Returns ``(answer, shared)`` where ``shared`` says this caller
        joined an existing flight instead of starting one.  Every
        caller gets its own row-copied relation.  Errors propagate to
        every waiter.  A caller cancelled while waiting detaches; the
        last waiter to detach cancels the physical call itself.
        """
        flight = self._flights.get(key)
        shared = flight is not None
        if flight is None:
            flight = _Flight()
            self._flights[key] = flight
            flight.task = asyncio.ensure_future(
                self._run_flight(key, flight, start())
            )
            self.stats.flights += 1
        else:
            self.stats.coalesced_hits += 1
        flight.waiters += 1
        try:
            # shield: a waiter's own cancellation must not cancel the
            # shared future out from under the other waiters.
            result = await asyncio.shield(flight.future)
        finally:
            flight.waiters -= 1
            if flight.waiters == 0:
                if flight.task is not None and not flight.task.done():
                    # Every logical caller is gone: abandon the call.
                    flight.task.cancel()
                elif flight.future.cancelled():
                    pass
                elif flight.future.done():
                    # Mark a dangling exception retrieved so an
                    # all-waiters-cancelled flight never warns.
                    flight.future.exception()
        return _copy_relation(result), shared

    async def _run_flight(self, key: FlightKey, flight: _Flight,
                          call: Awaitable[Relation]) -> None:
        try:
            result = await call
        except asyncio.CancelledError:
            if not flight.future.done():
                flight.future.cancel()
            raise
        except BaseException as exc:  # noqa: BLE001 - relayed to waiters
            if not flight.future.done():
                flight.future.set_exception(exc)
        else:
            if not flight.future.done():
                flight.future.set_result(result)
        finally:
            self._flights.pop(key, None)

    # -- disjunct batching ---------------------------------------------
    @staticmethod
    def batchable(condition: Condition) -> str | None:
        """The batched attribute, if ``condition`` is one equality atom."""
        if isinstance(condition, Leaf) and condition.atom.op is Op.EQ:
            return condition.atom.attribute
        return None

    async def batch_call(
        self,
        key: BatchKey,
        condition: Condition,
        supports: Callable[[Sequence[Condition]], bool],
        run_merged: Callable[[Condition], Awaitable[Relation]],
    ) -> tuple[Relation | None, str]:
        """Join the pending batch for ``key``; flush after the window.

        ``supports`` decides (from the compiled grammar) whether the
        distinct conditions' disjunction is acceptable; ``run_merged``
        issues the one physical call.  Exactly one pending caller's
        ``run_merged`` closure is invoked (the batch opener's, or the
        early-flush trigger's when ``batch_max`` fills first), so the
        physical call's accounting lands on that caller -- the batch
        **leader**.

        Returns ``(relation, role)``:

        * ``(rel, "merged")`` -- ``rel`` is the **shared merged**
          answer over ``attrs + {attr}``; the caller must post-filter
          with its own condition and project (which also isolates it).
        * ``(None, "single")`` -- the batch didn't pay off (lone entry,
          or grammar refused the disjunction): the caller should fall
          back to its own single flight.
        """
        if self.batch_window is None:
            return None, "single"
        batch = self._batches.get(key)
        if batch is None or batch.closed:
            batch = _Batch()
            self._batches[key] = batch
            batch.flusher = asyncio.ensure_future(
                self._flush_later(key, batch, supports, run_merged)
            )
        entry = _BatchEntry(
            condition, asyncio.get_running_loop().create_future()
        )
        batch.entries.append(entry)
        if len(batch.entries) >= self.batch_max:
            self._close(key, batch)
            if batch.flusher is not None:
                batch.flusher.cancel()
            asyncio.ensure_future(
                self._flush(batch, supports, run_merged)
            )
        try:
            return await asyncio.shield(entry.future)
        except asyncio.CancelledError:
            entry.cancelled = True
            if all(e.cancelled for e in batch.entries):
                self._close(key, batch)
                if batch.flusher is not None:
                    batch.flusher.cancel()
            raise

    def _close(self, key: BatchKey, batch: _Batch) -> None:
        batch.closed = True
        if self._batches.get(key) is batch:
            del self._batches[key]

    async def _flush_later(self, key, batch, supports, run_merged) -> None:
        await asyncio.sleep(self.batch_window or 0.0)
        if batch.closed:
            return
        self._close(key, batch)
        await self._flush(batch, supports, run_merged)

    async def _flush(self, batch: _Batch, supports, run_merged) -> None:
        entries = [e for e in batch.entries if not e.cancelled]
        if not entries:
            return
        distinct: list[Condition] = []
        for entry in entries:
            if entry.condition not in distinct:
                distinct.append(entry.condition)
        if len(distinct) < 2 or not supports(distinct):
            if len(distinct) >= 2:
                self.stats.batch_fallbacks += 1
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_result((None, "single"))
            return
        merged = disjunction(distinct)
        try:
            result = await run_merged(merged)
        except asyncio.CancelledError:
            for entry in entries:
                if not entry.future.done():
                    entry.future.cancel()
            raise
        except BaseException as exc:  # noqa: BLE001 - relayed to waiters
            for entry in entries:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        self.stats.batches += 1
        self.stats.batched_hits += len(entries) - 1
        for entry in entries:
            if not entry.future.done():
                entry.future.set_result((result, "merged"))

    # -- shutdown ------------------------------------------------------
    def drain(self) -> None:
        """Cancel every outstanding flight and batch (executor close)."""
        for flight in list(self._flights.values()):
            if flight.task is not None and not flight.task.done():
                flight.task.cancel()
        self._flights.clear()
        for batch in list(self._batches.values()):
            if batch.flusher is not None and not batch.flusher.done():
                batch.flusher.cancel()
        self._batches.clear()
