"""Plan execution: run a concrete plan against the simulated sources.

The executor performs the mediator's half of the paper's architecture:
it submits the plan's source queries (fixing their conjunct order first,
Section 6.1), then applies the mediator postprocessing operators --
selection, projection, union, intersection, duplicate elimination.

Sources are autonomous Internet sites, so calls fail.  The executor is
the resilience point of the architecture:

* a :class:`~repro.plans.retry.RetryPolicy` governs re-attempts of
  transiently failed source queries (exponential backoff, deterministic
  jitter, per-plan retry budget).  Capability rejections
  (:class:`~repro.errors.UnsupportedQueryError`) are **never** retried:
  they are a property of the query, not of the moment.
* an optional **failover** hook re-plans a source query that exhausted
  its retries against equivalent sources (mirrors) instead of aborting
  the whole plan.
* a **Choice** node -- the paper's operator for equivalent alternative
  plans -- can be resolved *at execution time* when the executor holds a
  cost model: the cheapest alternative runs first and the survivors are
  natural failover targets when it dies.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol

from repro.data.relation import Relation
from repro.errors import PlanExecutionError, TransientSourceError
from repro.observability.metrics import (
    Histogram,
    get_metrics,
    quantile_from_snapshot,
)
from repro.observability.trace import get_tracer, trace_event
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.plans.retry import RetryPolicy
from repro.source.metering import MeterSnapshot
from repro.source.source import CapabilitySource

logger = logging.getLogger(__name__)


@dataclass
class ExecutionReport:
    """What executing a plan actually cost (from the source meters).

    Besides the paper's two cost drivers (queries issued, tuples
    transferred) the report carries resilience accounting: how many
    source-call ``attempts`` were made, how many were ``retries``, how
    many ``failovers`` re-routed a dead source query to a mirror, and
    how much (simulated) time was spent in ``backoff_seconds``.

    The report is self-contained: ``duration_seconds`` is the
    wall-clock time of the execution, and ``per_source`` maps each
    source that saw traffic to the :class:`MeterSnapshot` *delta* this
    execution caused -- no manual meter diffing required.
    ``call_latency`` is the bucketed histogram snapshot of this
    execution's per-source-call wall-clock times; :meth:`call_p50_ms`
    etc. read it with the same quantile estimator the load harness and
    ``/metrics`` use.
    """

    result: Relation
    queries: int
    tuples_transferred: int
    attempts: int = 0
    retries: int = 0
    failovers: int = 0
    backoff_seconds: float = 0.0
    duration_seconds: float = 0.0
    per_source: dict[str, MeterSnapshot] = field(default_factory=dict)
    call_latency: dict | None = None
    #: Logical source calls answered by joining another caller's
    #: in-flight physical call (async executor's single-flight
    #: coalescing).  The attribution rule: a shared physical call is
    #: counted -- queries, tuples, attempts, retries -- **once**, on
    #: the logical caller that initiated it; every joiner reports one
    #: ``coalesced_hits`` and no per-source traffic for it.
    coalesced_hits: int = 0
    #: Logical source calls folded into another caller's merged
    #: disjunctive call (async executor's batching); same attribution
    #: rule, with the batch leader carrying the one physical call.
    batched_hits: int = 0

    def measured_cost(self, k1: float, k2: float) -> float:
        return self.queries * k1 + self.tuples_transferred * k2

    def call_quantile_ms(self, q: float) -> float:
        """The ``q`` quantile of per-source-call latency, in ms."""
        if self.call_latency is None:
            return 0.0
        return quantile_from_snapshot(self.call_latency, q) * 1000

    @property
    def call_p50_ms(self) -> float:
        return self.call_quantile_ms(0.50)

    @property
    def call_p95_ms(self) -> float:
        return self.call_quantile_ms(0.95)

    @property
    def call_p99_ms(self) -> float:
        return self.call_quantile_ms(0.99)


class FailoverTarget(Protocol):
    """Anything that can re-plan a failed source query elsewhere."""

    def replan(self, query: SourceQuery,
               failed: frozenset[str]) -> Plan | None:
        """An equivalent plan avoiding ``failed`` sources, or ``None``."""
        ...  # pragma: no cover - protocol


@dataclass
class _ExecutionContext:
    """Per-top-level-execution bookkeeping (retry budget, counters).

    Counter updates are serialized on a lock: the parallel executor
    shares one context across every branch of a plan, and the
    accounting (and especially the retry budget) must stay exact under
    contention.  The serial executor pays one uncontended lock per
    source call -- noise next to the call itself.
    """

    attempts: int = 0
    retries: int = 0
    failovers: int = 0
    backoff: float = 0.0
    failed_sources: set[str] = field(default_factory=set)
    budget_left: int | None = None
    #: Per-source-call wall-clock of *this* execution (thread-safe; the
    #: histogram has its own lock) -- snapshotted into the report.
    call_latency: Histogram = field(
        default_factory=lambda: Histogram("executor.call_seconds"),
        repr=False, compare=False,
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add_attempt(self) -> None:
        with self._lock:
            self.attempts += 1
        get_metrics().counter("executor.attempts").inc()

    def observe_call(self, seconds: float) -> None:
        self.call_latency.observe(seconds)
        get_metrics().histogram("executor.call_seconds").observe(seconds)

    def add_retry(self, delay: float) -> None:
        with self._lock:
            self.retries += 1
            self.backoff += delay
        metrics = get_metrics()
        metrics.counter("executor.retries").inc()
        metrics.histogram("executor.backoff_seconds").observe(delay)

    def add_failover(self) -> None:
        with self._lock:
            self.failovers += 1
        get_metrics().counter("executor.failovers").inc()

    def mark_failed(self, source: str) -> None:
        with self._lock:
            self.failed_sources.add(source)

    def any_failed(self, sources: Iterable[str]) -> bool:
        with self._lock:
            if not self.failed_sources:
                return False
            return any(s in self.failed_sources for s in sources)

    def take_retry_token(self) -> bool:
        """Consume one unit of the plan-wide retry budget (if bounded)."""
        with self._lock:
            if self.budget_left is None:
                return True
            if self.budget_left <= 0:
                return False
            self.budget_left -= 1
            return True


class Executor:
    """Runs concrete plans over a catalog of sources."""

    def __init__(
        self,
        catalog: Mapping[str, CapabilitySource],
        fix_queries: bool = True,
        cache=None,
        retry_policy: RetryPolicy | None = None,
        failover: FailoverTarget | None = None,
        cost_model=None,
    ):
        """``fix_queries=False`` submits planned conditions verbatim --
        useful in tests demonstrating that order-sensitive sources reject
        unfixed queries.

        ``cache`` is an optional :class:`repro.plans.cache.ResultCache`;
        source-query results are looked up there (keyed by the *planned*
        condition, before fixing) and stored after execution.  A cache
        hit never contacts the source, so it also masks its faults.

        ``retry_policy`` governs re-attempts after transient source
        failures (default: fail fast, the pre-resilience behaviour).
        ``failover`` re-plans a source query whose retries are exhausted
        (see :class:`FailoverTarget`; mirrors implement it).
        ``cost_model`` lets the executor resolve Choice nodes itself --
        cheapest alternative first, next alternative on transient
        failure; without one, Choice nodes are rejected as before.

        The catalog mapping is held by reference, so sources registered
        after the executor is created are visible to it (the mediator
        relies on this).
        """
        self.catalog = catalog
        self.fix_queries = fix_queries
        self.cache = cache
        self.retry_policy = retry_policy
        self.failover = failover
        self.cost_model = cost_model

    def _source(self, name: str) -> CapabilitySource:
        try:
            return self.catalog[name]
        except KeyError:
            raise PlanExecutionError(f"unknown source {name!r}") from None

    # ------------------------------------------------------------------
    def execute(self, plan: Plan) -> Relation:
        """Evaluate a concrete plan; returns the mediator's result relation."""
        return self._execute(plan, self._new_context())

    def _new_context(self) -> _ExecutionContext:
        policy = self.retry_policy
        budget = policy.retry_budget if policy is not None else None
        return _ExecutionContext(budget_left=budget)

    def _execute(self, plan: Plan, ctx: _ExecutionContext) -> Relation:
        if isinstance(plan, ChoicePlan):
            return self._execute_choice(plan, ctx)
        if isinstance(plan, SourceQuery):
            return self._execute_source_query(plan, ctx)
        if isinstance(plan, Postprocess):
            inner = self._execute(plan.input, ctx)
            if plan.condition.is_true:
                return inner.project(plan.attrs)
            return inner.select(plan.condition).project(plan.attrs)
        if isinstance(plan, (UnionPlan, IntersectPlan)):
            if not plan.children:
                raise PlanExecutionError(
                    f"cannot execute a {plan.op_name} plan with no inputs; "
                    f"plans must combine at least one sub-plan"
                )
            return self._execute_combination(plan, ctx)
        raise PlanExecutionError(f"cannot execute plan node {type(plan).__name__}")

    def _execute_combination(
        self, plan: UnionPlan | IntersectPlan, ctx: _ExecutionContext
    ) -> Relation:
        """Evaluate a Union/Intersect node's children and combine them.

        The serial executor runs the children left to right; the
        parallel executor overrides exactly this method to fan them out
        (the children of a combination node are independent -- no data
        flows between them).
        """
        parts = [self._execute(child, ctx) for child in plan.children]
        return self._combine(plan, parts)

    @staticmethod
    def _combine(
        plan: UnionPlan | IntersectPlan, parts: list[Relation]
    ) -> Relation:
        out = parts[0]
        combine = (
            Relation.union if isinstance(plan, UnionPlan)
            else Relation.intersect
        )
        for part in parts[1:]:
            out = combine(out, part)
        return out

    # ------------------------------------------------------------------
    def _execute_choice(self, plan: ChoicePlan, ctx: _ExecutionContext
                        ) -> Relation:
        """Resolve a Choice at execution time (cheapest first, then failover).

        The paper resolves Choice with the cost model *before* execution
        (Section 5.3); keeping the losing alternatives around until now
        turns them into failover targets for free.
        """
        if self.cost_model is None:
            raise PlanExecutionError(
                "plan still contains a Choice operator; resolve it with the "
                "cost model before execution (or construct the Executor "
                "with cost_model=... to resolve and fail over at runtime)"
            )
        ranked = sorted(plan.children, key=self.cost_model.cost)
        last_fault: TransientSourceError | None = None
        for index, alternative in enumerate(ranked):
            if ctx.any_failed(
                sq.source for sq in alternative.source_queries()
            ):
                continue
            try:
                result = self._execute(alternative, ctx)
            except TransientSourceError as fault:
                trace_event(
                    logger, logging.WARNING,
                    "Choice alternative %d failed (%s); trying the next one",
                    index, fault,
                    event="choice.failover", alternative=index,
                    fault=str(fault),
                )
                last_fault = fault
                ctx.add_failover()
                continue
            return result
        if last_fault is not None:
            raise last_fault
        raise PlanExecutionError(
            "every Choice alternative depends on a failed source"
        )

    def _execute_source_query(self, plan: SourceQuery, ctx: _ExecutionContext
                              ) -> Relation:
        tracer = get_tracer()
        with tracer.span(
            "executor.source_call",
            source=plan.source,
            condition=str(plan.condition),
            worker=threading.current_thread().name,
        ) as span:
            started = time.perf_counter()
            try:
                return self._source_query_attempts(plan, ctx, span)
            finally:
                ctx.observe_call(time.perf_counter() - started)

    def _source_query_attempts(
        self, plan: SourceQuery, ctx: _ExecutionContext, span
    ) -> Relation:
        """The retry/failover loop for one source query, under its span."""
        source = self._source(plan.source)
        if self.cache is not None:
            cached = self.cache.get(plan.source, plan.condition, plan.attrs)
            if cached is not None:
                trace_event(
                    logger, logging.DEBUG,
                    "cache hit for %s SP(%s)", plan.source, plan.condition,
                    event="cache.hit", source=plan.source,
                    condition=str(plan.condition),
                )
                get_metrics().counter("executor.cache_hits").inc()
                span.set_attributes(cache_hit=True, attempts=0)
                return cached
        policy = self.retry_policy if self.retry_policy is not None \
            else RetryPolicy.none()
        attempt = 0
        retries = 0
        backoff = 0.0
        while True:
            attempt += 1
            ctx.add_attempt()
            try:
                result = self._submit(source, plan)
                span.set_attributes(
                    attempts=attempt, retries=retries,
                    backoff_seconds=backoff, rows=len(result),
                )
                return result
            except TransientSourceError as fault:
                if policy.should_retry(attempt) and ctx.take_retry_token():
                    delay = policy.backoff_delay(
                        attempt, key=f"{plan.source}|{plan.condition}",
                        fault=fault,
                    )
                    retries += 1
                    backoff += delay
                    ctx.add_retry(delay)
                    source.meter.record_retry()
                    trace_event(
                        logger, logging.DEBUG,
                        "transient failure at %s (%s); retry %d/%d after "
                        "%.3fs", plan.source, fault, attempt,
                        policy.max_attempts - 1, delay,
                        event="retry", source=plan.source, attempt=attempt,
                        delay_seconds=delay, fault=str(fault),
                    )
                    policy.wait(delay)
                    continue
                # Retries exhausted: the source is failed for the rest
                # of this plan execution; try to route around it.
                span.set_attributes(
                    attempts=attempt, retries=retries, backoff_seconds=backoff
                )
                ctx.mark_failed(plan.source)
                if self.failover is not None:
                    alternative = self.failover.replan(
                        plan, frozenset(ctx.failed_sources)
                    )
                    if alternative is not None:
                        ctx.add_failover()
                        targets = sorted(
                            {sq.source for sq in alternative.source_queries()}
                        )
                        span.set_attribute("failover_targets", targets)
                        trace_event(
                            logger, logging.WARNING,
                            "failing over %s SP(%s) after %d attempts: %s",
                            plan.source, plan.condition, attempt, fault,
                            event="failover", source=plan.source,
                            attempts=attempt, targets=targets,
                            fault=str(fault),
                        )
                        return self._execute(alternative, ctx)
                raise

    def _submit(self, source: CapabilitySource, plan: SourceQuery) -> Relation:
        """One attempt: fix order, call the source, fill the cache."""
        condition = plan.condition
        if self.fix_queries and not condition.is_true:
            condition = source.fix(condition, plan.attrs)
            if condition != plan.condition:
                trace_event(
                    logger, logging.DEBUG,
                    "fixed query order for %s: %s -> %s",
                    plan.source, plan.condition, condition,
                    event="query.fixed", source=plan.source,
                    planned=str(plan.condition), fixed=str(condition),
                )
        result = source.execute(condition, plan.attrs)
        trace_event(
            logger, logging.DEBUG,
            "source %s answered SP(%s) with %d tuples",
            plan.source, condition, len(result),
            event="source.answered", source=plan.source,
            condition=str(condition), rows=len(result),
        )
        if self.cache is not None:
            self.cache.put(plan.source, plan.condition, plan.attrs, result)
        return result

    # ------------------------------------------------------------------
    def execute_with_report(self, plan: Plan) -> ExecutionReport:
        """Execute and report measured traffic (sums the involved meters).

        The whole catalog is snapshotted, not just the plan's own
        sources: failover and execution-time Choice resolution may pull
        in sources the planned tree never mentions.

        Note on caching: traffic is *measured at the sources*, so a plan
        answered entirely from the result cache reports zero queries and
        zero tuples -- by design.  The optimizer's estimate and the
        measured cost diverge under caching; the meters tell you what
        the Internet actually saw.
        """
        # dict(...) of the live catalog is a C-level copy (atomic under
        # the GIL): a concurrent add_source must not blow up the
        # Python-level iteration below with "dict changed size".
        catalog = dict(self.catalog)
        before = {
            name: source.meter.snapshot()
            for name, source in catalog.items()
        }
        ctx = self._new_context()
        started = time.perf_counter()
        result = self._execute(plan, ctx)
        duration = time.perf_counter() - started
        queries = 0
        tuples = 0
        per_source: dict[str, MeterSnapshot] = {}
        for name, source in catalog.items():
            delta = source.meter.snapshot() - before[name]
            queries += delta.queries
            tuples += delta.tuples
            if delta != MeterSnapshot():
                per_source[name] = delta
        return ExecutionReport(
            result,
            queries,
            tuples,
            attempts=ctx.attempts,
            retries=ctx.retries,
            failovers=ctx.failovers,
            backoff_seconds=ctx.backoff,
            duration_seconds=duration,
            per_source=per_source,
            call_latency=ctx.call_latency.snapshot(),
        )


def reference_answer(
    source: CapabilitySource, condition, attributes
) -> Relation:
    """Ground truth: evaluate SP(C, A, R) directly on the full relation,
    ignoring capabilities.  Used by tests and experiment harnesses."""
    return source.relation.sp(condition, frozenset(attributes))
