"""Plan execution: run a concrete plan against the simulated sources.

The executor performs the mediator's half of the paper's architecture:
it submits the plan's source queries (fixing their conjunct order first,
Section 6.1), then applies the mediator postprocessing operators --
selection, projection, union, intersection, duplicate elimination.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Mapping

logger = logging.getLogger(__name__)

from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.errors import PlanExecutionError
from repro.plans.nodes import (
    ChoicePlan,
    IntersectPlan,
    Plan,
    Postprocess,
    SourceQuery,
    UnionPlan,
)
from repro.source.source import CapabilitySource


@dataclass
class ExecutionReport:
    """What executing a plan actually cost (from the source meters)."""

    result: Relation
    queries: int
    tuples_transferred: int

    def measured_cost(self, k1: float, k2: float) -> float:
        return self.queries * k1 + self.tuples_transferred * k2


class Executor:
    """Runs concrete plans over a catalog of sources."""

    def __init__(
        self,
        catalog: Mapping[str, CapabilitySource],
        fix_queries: bool = True,
        cache=None,
    ):
        """``fix_queries=False`` submits planned conditions verbatim --
        useful in tests demonstrating that order-sensitive sources reject
        unfixed queries.

        ``cache`` is an optional :class:`repro.plans.cache.ResultCache`;
        source-query results are looked up there (keyed by the *planned*
        condition, before fixing) and stored after execution.

        The catalog mapping is held by reference, so sources registered
        after the executor is created are visible to it (the mediator
        relies on this).
        """
        self.catalog = catalog
        self.fix_queries = fix_queries
        self.cache = cache

    def _source(self, name: str) -> CapabilitySource:
        try:
            return self.catalog[name]
        except KeyError:
            raise PlanExecutionError(f"unknown source {name!r}") from None

    # ------------------------------------------------------------------
    def execute(self, plan: Plan) -> Relation:
        """Evaluate a concrete plan; returns the mediator's result relation."""
        if isinstance(plan, ChoicePlan):
            raise PlanExecutionError(
                "plan still contains a Choice operator; resolve it with the "
                "cost model before execution"
            )
        if isinstance(plan, SourceQuery):
            source = self._source(plan.source)
            if self.cache is not None:
                cached = self.cache.get(plan.source, plan.condition, plan.attrs)
                if cached is not None:
                    logger.debug(
                        "cache hit for %s SP(%s)", plan.source, plan.condition
                    )
                    return cached
            condition = plan.condition
            if self.fix_queries and not condition.is_true:
                condition = source.fix(condition, plan.attrs)
                if condition != plan.condition:
                    logger.debug(
                        "fixed query order for %s: %s -> %s",
                        plan.source, plan.condition, condition,
                    )
            result = source.execute(condition, plan.attrs)
            logger.debug(
                "source %s answered SP(%s) with %d tuples",
                plan.source, condition, len(result),
            )
            if self.cache is not None:
                self.cache.put(plan.source, plan.condition, plan.attrs, result)
            return result
        if isinstance(plan, Postprocess):
            inner = self.execute(plan.input)
            if plan.condition.is_true:
                return inner.project(plan.attrs)
            return inner.select(plan.condition).project(plan.attrs)
        if isinstance(plan, UnionPlan):
            parts = [self.execute(child) for child in plan.children]
            out = parts[0]
            for part in parts[1:]:
                out = out.union(part)
            return out
        if isinstance(plan, IntersectPlan):
            parts = [self.execute(child) for child in plan.children]
            out = parts[0]
            for part in parts[1:]:
                out = out.intersect(part)
            return out
        raise PlanExecutionError(f"cannot execute plan node {type(plan).__name__}")

    def execute_with_report(self, plan: Plan) -> ExecutionReport:
        """Execute and report measured traffic (sums the involved meters)."""
        involved = {q.source for q in plan.source_queries()}
        before = {name: self._source(name).meter.snapshot() for name in involved}
        result = self.execute(plan)
        queries = 0
        tuples = 0
        for name in involved:
            delta = self._source(name).meter.snapshot() - before[name]
            queries += delta.queries
            tuples += delta.tuples
        return ExecutionReport(result, queries, tuples)


def reference_answer(
    source: CapabilitySource, condition, attributes
) -> Relation:
    """Ground truth: evaluate SP(C, A, R) directly on the full relation,
    ignoring capabilities.  Used by tests and experiment harnesses."""
    return source.relation.sp(condition, frozenset(attributes))
