"""Capability-sensitive bind-joins across two sources.

The paper restricts itself to selection queries but notes (Sections 1
and 7) that they "form the building blocks of more complex queries" and
that the extended version shows how the techniques extend.  This module
supplies the classic building block for joins over limited sources: the
**bind-join** (dependent join).  The outer query runs first; each
distinct value of the join attributes is then *bound into* the inner
source's condition as an equality, and every inner probe is planned
capability-sensitively (through a :class:`repro.wrapper.Wrapper`, so an
inner source that only supports equality lookups on the join attribute
works, and an inner source that cannot support the probes at all is
detected before anything is sent).

This is exactly how a 1999 mediator would join a bookstore against a
price-comparison site: you cannot download either, but you can look the
outer result's keys up one by one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import TRUE, Condition, Leaf, conjunction
from repro.data.relation import Relation
from repro.data.schema import Attribute, Schema
from repro.errors import InfeasiblePlanError, SchemaError
from repro.planners.base import Planner
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.wrapper import Wrapper


@dataclass(frozen=True)
class JoinSpec:
    """A two-source equi-join of select-project queries.

    ``on`` maps outer attributes to inner attributes.  The outer side's
    projection is extended with its join attributes automatically; the
    inner projection must *not* include the inner join attributes (they
    are equal to the outer ones by construction and would collide).
    """

    outer: TargetQuery
    inner_source: str
    inner_condition: Condition
    inner_attributes: frozenset[str]
    on: Mapping[str, str]

    def __post_init__(self) -> None:
        if not self.on:
            raise SchemaError("a bind-join needs at least one join attribute pair")
        object.__setattr__(self, "on", dict(self.on))
        object.__setattr__(
            self, "inner_attributes", frozenset(self.inner_attributes)
        )
        overlap = self.inner_attributes & set(self.on.values())
        if overlap:
            raise SchemaError(
                f"inner projection repeats join attributes {sorted(overlap)}; "
                "they are provided by the outer side"
            )


@dataclass
class JoinAnswer:
    """Result of a bind-join with its execution economics."""

    result: Relation
    bindings: int
    outer_queries: int
    inner_queries: int
    tuples_transferred: int

    @property
    def rows(self) -> list[dict]:
        return self.result.rows


class BindJoinExecutor:
    """Plans and runs bind-joins over a catalog of capability sources."""

    def __init__(
        self,
        catalog: Mapping[str, CapabilitySource],
        planner: Planner | None = None,
    ):
        self.catalog = catalog
        self._wrappers: dict[str, Wrapper] = {}
        self._planner = planner

    def _wrapper(self, source_name: str) -> Wrapper:
        wrapper = self._wrappers.get(source_name)
        if wrapper is None:
            try:
                source = self.catalog[source_name]
            except KeyError:
                raise InfeasiblePlanError(
                    f"unknown source {source_name!r}"
                ) from None
            wrapper = Wrapper(source, planner=self._planner)
            self._wrappers[source_name] = wrapper
        return wrapper

    # ------------------------------------------------------------------
    def _inner_condition_for(self, spec: JoinSpec, binding: tuple) -> Condition:
        equalities: list[Condition] = [
            Leaf(Atom(inner_attr, Op.EQ, value))
            for (outer_attr, inner_attr), value in zip(spec.on.items(), binding)
        ]
        parts = equalities
        if not spec.inner_condition.is_true:
            parts = parts + [spec.inner_condition]
        return conjunction(parts)

    def check_feasible(self, spec: JoinSpec, probe_values: Sequence) -> bool:
        """Can the inner source answer the probes at all?

        Uses a representative binding (capability support depends on the
        constant *classes*, not values, for ``$``-class templates).
        """
        condition = self._inner_condition_for(spec, tuple(probe_values))
        inner_attrs = spec.inner_attributes
        return self._wrapper(spec.inner_source).supports(condition, inner_attrs)

    def execute(self, spec: JoinSpec) -> JoinAnswer:
        """Run the bind-join.  Raises if either side is unplannable."""
        outer_wrapper = self._wrapper(spec.outer.source)
        inner_wrapper = self._wrapper(spec.inner_source)
        outer_attrs = spec.outer.attributes | set(spec.on)
        outer_answer = outer_wrapper.query(spec.outer.condition, outer_attrs)

        inner_schema = self.catalog[spec.inner_source].schema
        inner_schema.validate_attributes(spec.inner_attributes)

        # Distinct bindings of the join attributes, in first-seen order.
        bindings: dict[tuple, None] = {}
        for row in outer_answer.result:
            bindings.setdefault(tuple(row[a] for a in spec.on))

        inner_queries = 0
        tuples = outer_answer.tuples_transferred
        inner_rows_by_binding: dict[tuple, list[dict]] = {}
        for binding in bindings:
            condition = self._inner_condition_for(spec, binding)
            answer = inner_wrapper.query(condition, spec.inner_attributes)
            inner_queries += answer.queries_sent
            tuples += answer.tuples_transferred
            inner_rows_by_binding[binding] = answer.rows

        # Merge: outer row ++ matching inner rows.
        out_rows: list[dict] = []
        for row in outer_answer.result:
            binding = tuple(row[a] for a in spec.on)
            for inner_row in inner_rows_by_binding.get(binding, ()):
                merged = dict(row)
                for attr, value in inner_row.items():
                    if attr in merged and merged[attr] != value:
                        raise SchemaError(
                            f"attribute name collision on {attr!r}; project "
                            "it away on one side or rename"
                        )
                    merged[attr] = value
                out_rows.append(merged)

        schema = _joined_schema(
            self.catalog[spec.outer.source].schema,
            inner_schema,
            outer_attrs,
            spec.inner_attributes,
        )
        result = Relation(schema, out_rows, validate=False).distinct()
        return JoinAnswer(
            result=result,
            bindings=len(bindings),
            outer_queries=outer_answer.queries_sent,
            inner_queries=inner_queries,
            tuples_transferred=tuples,
        )


def _joined_schema(
    outer_schema: Schema,
    inner_schema: Schema,
    outer_attrs: Iterable[str],
    inner_attrs: Iterable[str],
) -> Schema:
    attrs: list[Attribute] = []
    seen: set[str] = set()
    for attr in outer_schema.attrs:
        if attr.name in set(outer_attrs):
            attrs.append(attr)
            seen.add(attr.name)
    for attr in inner_schema.attrs:
        if attr.name in set(inner_attrs) and attr.name not in seen:
            attrs.append(attr)
            seen.add(attr.name)
    return Schema(
        f"{outer_schema.name}_join_{inner_schema.name}", tuple(attrs), key=None
    )


def bind_join(
    catalog: Mapping[str, CapabilitySource],
    outer: TargetQuery,
    inner_source: str,
    on: Mapping[str, str],
    inner_condition: Condition | None = None,
    inner_attributes: Iterable[str] = (),
    planner: Planner | None = None,
) -> JoinAnswer:
    """Convenience one-shot bind-join (see :class:`BindJoinExecutor`)."""
    spec = JoinSpec(
        outer=outer,
        inner_source=inner_source,
        inner_condition=inner_condition if inner_condition is not None else TRUE,
        inner_attributes=frozenset(inner_attributes),
        on=on,
    )
    return BindJoinExecutor(catalog, planner).execute(spec)
