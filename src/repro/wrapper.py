"""Wrappers: generic relational capability over a limited source.

Section 2: "if wrappers are to provide generic relational capabilities
for Internet sources, then they need to implement a scheme like the one
we describe in Section 6. That is, when a wrapper receives a query, it
must find the best way to execute the query at the underlying source,
and this is precisely the problem we are addressing in this paper."

:class:`Wrapper` is that wrapper: it accepts *any* select-project query
over a capability-limited source and answers it by planning with
GenCompact, fixing the source queries, executing, and postprocessing.
The only queries it cannot answer are those no feasible plan exists for
at all -- and for those it raises with a precise reason instead of
handing the source something it will reject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.conditions.parser import parse_condition
from repro.conditions.tree import Condition
from repro.data.relation import Relation
from repro.errors import InfeasiblePlanError
from repro.planners.base import Planner, PlanningResult
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.plans.execute import Executor
from repro.plans.retry import RetryPolicy
from repro.query import TargetQuery
from repro.serving.plan_cache import PlanCache, PlanTemplates, canonical_key
from repro.source.source import CapabilitySource


@dataclass
class WrapperAnswer:
    """Result of a wrapped query: rows plus what answering them cost."""

    result: Relation
    planning: PlanningResult
    queries_sent: int
    tuples_transferred: int

    @property
    def rows(self) -> list[dict]:
        return self.result.rows


class Wrapper:
    """A relational facade over one capability-limited source.

    Plans are cached per (canonical condition, attributes) in a bounded
    LRU :class:`~repro.serving.PlanCache`: a wrapper typically serves
    many instances of the same query template, and the planning work --
    not execution -- dominates for small results.  Canonical keying
    means commuted/reassociated spellings of one condition share a
    single entry.

    With ``reuse_templates`` (the default), a cache miss first tries to
    *instantiate* the plan of a previously planned query with the same
    condition skeleton -- same tree shape and constant classes,
    different constants -- by substituting the new constants into the
    old plan and re-validating every source query against the source
    description.  SSDL templates usually match constant classes, so the
    validated substitution is almost always accepted and a bind-join's
    thousandth probe costs a validation, not a planning run.

    The classic prepared-statement trade-off applies: the instantiated
    plan is guaranteed *feasible* but inherits the template's shape, so
    it may be suboptimal for constants with very different
    selectivities.  Pass ``reuse_templates=False`` to replan every
    instance.
    """

    def __init__(
        self,
        source: CapabilitySource,
        planner: Planner | None = None,
        k1: float = 100.0,
        k2: float = 1.0,
        reuse_templates: bool = True,
        retry_policy: RetryPolicy | None = None,
        plan_cache_entries: int = 256,
        compile_capabilities: bool = True,
    ):
        """``plan_cache_entries`` bounds the wrapper's plan cache (and
        its template store): both are LRU :class:`PlanCache` instances,
        so a wrapper serving an unbounded stream of distinct query
        instances holds a bounded number of plans -- the serving
        layer's one eviction policy, not a private unbounded dict.
        ``compile_capabilities`` (default on) compiles the source's
        grammars into token-trie recognizers when the wrapper is built
        -- wrapper construction *is* integration time -- so both
        planning Checks and template re-validation are token walks."""
        self.source = source
        self.planner = planner if planner is not None else GenCompact()
        self.reuse_templates = reuse_templates
        self._cost_model = CostModel({source.name: source.stats}, k1, k2)
        self._executor = Executor(
            {source.name: source}, retry_policy=retry_policy
        )
        if compile_capabilities:
            source.compile_capabilities()
        # Canonically keyed: commuted/reassociated variants of a planned
        # condition hit the same entry (the plan answers them all).
        self._plan_cache = PlanCache(
            plan_cache_entries, metrics_prefix="wrapper.plan_cache"
        )
        # constant-stripped skeleton -> a rebindable (condition, result).
        self._templates = PlanTemplates(
            plan_cache_entries, metrics_prefix="wrapper.template_cache"
        )

    # ------------------------------------------------------------------
    def plan(self, condition: Condition | str, attributes: Iterable[str]
             ) -> PlanningResult:
        """The best feasible plan for σ_condition π_attributes (cached)."""
        if isinstance(condition, str):
            condition = parse_condition(condition)
        attrs = self.source.schema.validate_attributes(attributes)
        self.source.schema.validate_attributes(condition.attributes())
        key = (canonical_key(condition), attrs)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        query = TargetQuery(condition, attrs, self.source.name)
        result = None
        template_key = self._templates.key(query, self.planner.name)
        if self.reuse_templates:
            result = self._templates.instantiate(
                template_key, query, self.source, self._cost_model
            )
        if result is None:
            result = self.planner.plan(query, self.source, self._cost_model)
            self._templates.store(template_key, condition, result)
        self._plan_cache.put(key, result)
        return result

    @property
    def template_hits(self) -> int:
        """How many plans were produced by template instantiation."""
        return self._templates.hits

    def supports(self, condition: Condition | str, attributes: Iterable[str]
                 ) -> bool:
        """Can this wrapper answer the query at all?"""
        return self.plan(condition, attributes).feasible

    def query(self, condition: Condition | str, attributes: Iterable[str]
              ) -> WrapperAnswer:
        """Answer an arbitrary SP query; raise if truly unanswerable."""
        planning = self.plan(condition, attributes)
        if planning.plan is None:
            raise InfeasiblePlanError(
                f"the capabilities of source {self.source.name!r} admit no "
                f"plan for σ({planning.query.condition}) "
                f"π({sorted(planning.query.attributes)})"
            )
        before = self.source.meter.snapshot()
        result = self._executor.execute(planning.plan)
        delta = self.source.meter.snapshot() - before
        return WrapperAnswer(result, planning, delta.queries, delta.tuples)

    def cache_size(self) -> int:
        return len(self._plan_cache)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Wrapper({self.source.name!r}, planner={self.planner.name})"
