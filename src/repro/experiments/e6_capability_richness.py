"""E6 (Figure IV): plan quality vs source-capability richness.

Sweep the fraction of the atomic-template space a source's grammar
supports and report, for GenCompact / CNF / DNF:

* the fraction of random queries with a feasible plan, and
* the mean cost ratio against GenCompact over the queries both schemes
  planned (pairwise, so a scheme's failures don't empty the sample).

Expected shape: GenCompact's feasibility dominates at every richness
level, and the baselines' cost ratios stay >= 1 -- largest in the middle
of the sweep, converging to 1 as capabilities approach full relational
power (everyone just sends the pure plan).
"""

from __future__ import annotations

import statistics

from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.baselines import CNFPlanner, DNFPlanner
from repro.planners.gencompact import GenCompact
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def run(quick: bool = False, seed: int = 606) -> Table:
    table = Table(
        "E6: plan quality vs capability richness",
        ["richness", "GC feas", "CNF feas", "DNF feas",
         "CNF/GC cost", "DNF/GC cost"],
        notes=(
            "'feas' = fraction of queries with a feasible plan.  Cost "
            "ratios average over the queries where both that scheme and "
            "GenCompact found a plan (>= 1 means GenCompact is cheaper)."
        ),
    )
    levels = (0.3, 0.6, 0.9) if quick else (0.2, 0.4, 0.6, 0.8, 1.0)
    per_level = 6 if quick else 15
    world_seeds = (seed, seed + 1) if quick else (seed, seed + 1, seed + 2)
    n_atoms = 5
    gencompact = GenCompact()
    baselines = [CNFPlanner(), DNFPlanner()]
    for richness in levels:
        gc_feasible_total = 0
        total_queries = 0
        feas_counts = [0 for _ in baselines]
        ratio_samples: list[list[float]] = [[] for _ in baselines]
        for world_seed in world_seeds:
            config = WorldConfig(
                n_attributes=6,
                n_rows=3000,
                richness=richness,
                download_prob=0.1,
                export_prob=0.95,
                seed=world_seed,
            )
            source = make_source(config)
            cost_model = cost_model_for(source)
            queries = make_queries(
                config, source, per_level, n_atoms,
                seed=world_seed + int(richness * 100),
            )
            total_queries += len(queries)
            gc_results = [gencompact.plan(q, source, cost_model) for q in queries]
            gc_feasible_total += sum(r.feasible for r in gc_results)
            for b_index, baseline in enumerate(baselines):
                results = [baseline.plan(q, source, cost_model) for q in queries]
                feas_counts[b_index] += sum(r.feasible for r in results)
                ratio_samples[b_index].extend(
                    results[i].cost / gc_results[i].cost
                    for i in range(len(queries))
                    if results[i].feasible and gc_results[i].feasible
                )
        ratios = [
            round(statistics.mean(samples), 2) if samples else "n/a"
            for samples in ratio_samples
        ]
        table.add(
            richness,
            round(gc_feasible_total / total_queries, 2),
            round(feas_counts[0] / total_queries, 2),
            round(feas_counts[1] / total_queries, 2),
            ratios[0],
            ratios[1],
        )
    return table
