"""Result tables: a tiny ascii formatter shared by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """An experiment result: headers, rows, and commentary."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values but the table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(values))

    def column(self, header: str) -> list:
        """All values of one column (for assertions in tests/benches)."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def format(self) -> str:
        def render(value) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        cells = [self.headers] + [[render(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header_line)
        lines.append("-" * len(header_line))
        for row in cells[1:]:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        if self.notes:
            lines.append("")
            lines.append(self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
