"""E5 (Figure III): ablation of the pruning rules PR1-PR3.

Runs IPG with each pruning rule disabled (and all disabled) on random
queries and reports sub-plan table activity, MCSC candidate counts and
planning time -- while verifying that **every configuration returns the
same plan cost** (the rules are pure search-space reductions; Section
6.3 argues each never prunes the optimum).
"""

from __future__ import annotations

import statistics

from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.workloads.synthetic import WorldConfig, make_queries, make_source

CONFIGS = (
    ("all pruning", dict()),
    ("no PR1", dict(pr1=False)),
    ("no PR2", dict(pr2=False)),
    ("no PR3", dict(pr3=False)),
    ("no pruning", dict(pr1=False, pr2=False, pr3=False)),
)


def run(quick: bool = False, seed: int = 505) -> Table:
    table = Table(
        "E5: pruning-rule ablation (IPG)",
        ["configuration", "queries", "mean subplans", "mean MCSC cands",
         "mean ms", "optimum preserved"],
        notes=(
            "'optimum preserved' is 'yes' when the configuration found "
            "exactly the same plan cost as fully-pruned IPG on every query "
            "-- the soundness claim of Section 6.3."
        ),
    )
    per_run = 6 if quick else 15
    n_atoms = 5 if quick else 6
    config = WorldConfig(n_attributes=6, n_rows=3000, richness=0.7, seed=seed)
    source = make_source(config)
    cost_model = cost_model_for(source)
    queries = make_queries(config, source, per_run, n_atoms, seed=seed * 11)

    # Warm the shared Check/statistics caches so the first configuration
    # is not charged for one-time parsing and stats construction.
    warmup = GenCompact()
    for query in queries:
        warmup.plan(query, source, cost_model)

    baseline_costs: list[float] | None = None
    for label, overrides in CONFIGS:
        planner = GenCompact(**overrides)
        subplans, cands, times, costs = [], [], [], []
        for query in queries:
            result = planner.plan(query, source, cost_model)
            subplans.append(result.stats.subplans_considered)
            cands.append(result.stats.mcsc_sets)
            times.append(result.stats.elapsed_sec * 1000)
            costs.append(result.cost)
        if baseline_costs is None:
            baseline_costs = costs
            preserved = "yes"
        else:
            preserved = (
                "yes"
                if all(
                    abs(a - b) < 1e-6 or (a == b)  # handles inf == inf
                    for a, b in zip(costs, baseline_costs)
                )
                else "NO"
            )
        table.add(
            label,
            len(queries),
            round(statistics.mean(subplans), 1),
            round(statistics.mean(cands), 1),
            round(statistics.mean(times), 2),
            preserved,
        )
    return table
