"""E9 (Table 4): handling commutativity -- rewrite rule vs description
rewriting (Section 6.1).

An order-sensitive source accepts fixed conjunct orders only; queries
arrive with their conjuncts shuffled.  Three configurations:

* GenModular firing the commutativity *rewrite rule* against the native
  description (the strategy GenCompact retires);
* GenModular against the commutation-closed description, commutativity
  rule off;
* GenCompact (closed description + query fixing at execution).

Reported: feasibility, CTs processed, planning time -- and the fixing
overhead (the cost Section 6.1 argues is "low since the mediator only
fixes the source queries of just one plan").
"""

from __future__ import annotations

import random
import statistics
import time

from repro.conditions.tree import And, Condition, Leaf
from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder
from repro.workloads.synthetic import WorldConfig, make_table

#: Fixed conjunct orders the order-sensitive grammar accepts.
_RULES: tuple[tuple[tuple[str, str], ...], ...] = (
    (("a0", "="), ("a1", "<=")),
    (("a2", "="), ("a1", ">="), ("a0", "=")),
    (("a4", "="), ("a3", "<="), ("a2", "=")),
    (("a0", "="), ("a3", ">="), ("a4", "="), ("a5", "<=")),
)


def _ordered_source(config: WorldConfig) -> CapabilitySource:
    builder = DescriptionBuilder("ordered")
    exports = ["key"] + [f"a{i}" for i in range(config.n_attributes)]
    for index, rule in enumerate(_RULES):
        rhs = " and ".join(
            f"{attr} {op} " + ("$str" if int(attr[1:]) % 2 == 0 else "$num")
            for attr, op in rule
        )
        builder.rule(f"r{index}", rhs, attributes=exports)
    return CapabilitySource("ordered", make_table(config), builder.build())


def _shuffled_queries(
    config: WorldConfig, n_queries: int, rng: random.Random
) -> list[TargetQuery]:
    """Queries instantiating a grammar rule with shuffled conjunct order."""
    from repro.conditions.atoms import Atom, Op

    ops = {"=": Op.EQ, "<=": Op.LE, ">=": Op.GE}
    queries = []
    for _ in range(n_queries):
        rule = rng.choice(_RULES)
        leaves: list[Condition] = []
        for attr, op_text in rule:
            index = int(attr[1:])
            if index % 2 == 0:
                value: object = f"v{index}_{rng.randrange(4)}"
            else:
                value = rng.randrange(0, 1000)
            leaves.append(Leaf(Atom(attr, ops[op_text], value)))
        rng.shuffle(leaves)
        queries.append(
            TargetQuery(And(leaves), frozenset(["key", "a0"]), "ordered")
        )
    return queries


def run(quick: bool = False, seed: int = 909) -> Table:
    table = Table(
        "E9: commutativity via rewrite rule vs description rewriting",
        ["configuration", "feasible", "mean CTs", "mean ms", "fix ms/plan"],
        notes=(
            "Order-sensitive grammar; queries arrive with conjuncts "
            "shuffled.  'fix ms/plan' is the mean cost of reordering the "
            "chosen plan's source queries for the native grammar "
            "(only applicable to the closed-description configurations)."
        ),
    )
    n_queries = 6 if quick else 20
    config = WorldConfig(n_attributes=6, n_rows=2000, seed=seed)
    source = _ordered_source(config)
    cost_model = cost_model_for(source)
    rng = random.Random(seed)
    queries = _shuffled_queries(config, n_queries, rng)

    configurations = (
        ("GenModular + commutative rule", GenModular(max_rewrites=120), False),
        ("GenModular + closed description",
         GenModular(max_rewrites=120, use_closed_description=True), True),
        ("GenCompact (closed description)", GenCompact(), True),
    )
    for label, planner, uses_fixing in configurations:
        feasible = 0
        cts, times, fix_times = [], [], []
        for query in queries:
            result = planner.plan(query, source, cost_model)
            cts.append(result.stats.cts_processed)
            times.append(result.stats.elapsed_sec * 1000)
            if result.feasible:
                feasible += 1
                if uses_fixing:
                    started = time.perf_counter()
                    for source_query in result.plan.source_queries():
                        if not source_query.condition.is_true:
                            source.fix(source_query.condition, source_query.attrs)
                    fix_times.append((time.perf_counter() - started) * 1000)
        table.add(
            label,
            f"{feasible}/{len(queries)}",
            round(statistics.mean(cts), 1),
            round(statistics.mean(times), 2),
            round(statistics.mean(fix_times), 3) if fix_times else "n/a",
        )
    return table
