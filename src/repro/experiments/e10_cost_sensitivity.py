"""E10 (Figure VI): cost-model sensitivity and plan crossover.

Eq. 1's constants "depend on the source" (Section 6.2): a slow form with
fast transfer has a huge per-query overhead k1; a metered link has a
huge per-tuple cost k2.  Sweeping k1 (k2 fixed at 1) on Example 1.2
exposes the crossover the cost model exists to navigate:

* with k1 small, the two-query plan (one per make) wins -- it moves the
  least data;
* as k1 grows, plans with fewer source queries win, and eventually the
  single-query CNF-shaped plan (style + size list pushed, makes/prices
  filtered locally) is optimal.

GenCompact must *track* the crossover: for each k1 it should pick the
plan the strategies' envelope says is cheapest, never sitting above the
best fixed strategy.
"""

from __future__ import annotations

from repro.experiments.report import Table
from repro.planners.baselines import CNFPlanner, DNFPlanner
from repro.planners.gencompact import GenCompact
from repro.plans.cost import CostModel
from repro.workloads.scenarios import car_scenario


def run(quick: bool = False) -> Table:
    table = Table(
        "E10: plan choice vs per-query overhead k1 (Example 1.2, k2 = 1)",
        ["k1", "GC cost", "GC queries", "CNF cost", "DNF cost",
         "GC <= min(baselines)"],
        notes=(
            "'GC queries' = source queries in GenCompact's chosen plan.  "
            "As k1 grows the optimizer shifts from the two-query plan to "
            "single-query plans; it must always sit on or below the "
            "baselines' envelope."
        ),
    )
    scenario = car_scenario(2000 if quick else 12000)
    source = scenario.source
    k1_values = (1, 100, 2000, 20000) if quick else (
        1, 10, 100, 500, 2000, 8000, 20000,
    )
    gencompact = GenCompact()
    cnf = CNFPlanner()
    dnf = DNFPlanner()
    for k1 in k1_values:
        cost_model = CostModel({source.name: source.stats}, k1=float(k1), k2=1.0)
        gc = gencompact.plan(scenario.query, source, cost_model)
        cnf_result = cnf.plan(scenario.query, source, cost_model)
        dnf_result = dnf.plan(scenario.query, source, cost_model)
        envelope = min(
            x.cost for x in (cnf_result, dnf_result) if x.feasible
        )
        n_queries = (
            len(list(gc.plan.source_queries())) if gc.feasible else 0
        )
        table.add(
            k1,
            round(gc.cost, 1),
            n_queries,
            round(cnf_result.cost, 1),
            round(dnf_result.cost, 1),
            "yes" if gc.cost <= envelope + 1e-6 else "NO",
        )
    return table
