"""Command-line entry point: run the reconstructed evaluation suite."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the reconstructed evaluation of the ICDE 1999 paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="eN",
        help=f"which experiments to run (default: all of {', '.join(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller instances, faster runs"
    )
    args = parser.parse_args(argv)
    names = args.experiments or list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {', '.join(unknown)}")
    for name in names:
        started = time.perf_counter()
        table = EXPERIMENTS[name](quick=args.quick)
        elapsed = time.perf_counter() - started
        print(table.format())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
