"""E8 (Figure V): MCSC solvers -- the paper's O(2^Q) enumeration vs the
bitmask DP vs greedy.

The sub-plan combination step of IPG is a Minimum-Cost Set Cover.  This
experiment builds random candidate pools of growing size Q over k
elements and compares: the paper's exhaustive subset enumeration, our
exact DP (must agree on every instance), and the greedy
ln-approximation (cost ratio >= 1, typically very close).
"""

from __future__ import annotations

import random
import statistics
import time

from repro.experiments.report import Table
from repro.planners.mcsc import (
    CoverCandidate,
    solve_dp,
    solve_enumerate,
    solve_greedy,
)


def random_instance(
    n_elements: int, n_candidates: int, rng: random.Random
) -> list[CoverCandidate[int]]:
    """A random solvable cover instance (singletons guarantee coverage)."""
    candidates: list[CoverCandidate[int]] = []
    for element in range(n_elements):
        candidates.append(
            CoverCandidate(frozenset([element]), rng.uniform(50, 400), element)
        )
    while len(candidates) < n_candidates:
        size = rng.randint(2, max(2, n_elements // 2 + 1))
        coverage = frozenset(rng.sample(range(n_elements), min(size, n_elements)))
        # Bigger sets tend to be cheaper per element but pricier overall.
        cost = rng.uniform(60, 250) * (1 + 0.4 * len(coverage))
        candidates.append(CoverCandidate(coverage, cost, len(candidates)))
    return candidates


def run(quick: bool = False, seed: int = 808) -> Table:
    table = Table(
        "E8: MCSC solver comparison",
        ["Q (candidates)", "elements", "enum ms", "dp ms", "speedup",
         "greedy/opt", "agree"],
        notes=(
            "'enum' is the paper's O(2^Q) subset enumeration; 'dp' the "
            "exact bitmask dynamic program; both must find the same "
            "optimum ('agree')."
        ),
    )
    q_values = (6, 10) if quick else (6, 8, 10, 12, 14, 16)
    trials = 3 if quick else 8
    rng = random.Random(seed)
    for n_candidates in q_values:
        n_elements = min(8, max(3, n_candidates // 2))
        enum_times, dp_times, ratios = [], [], []
        agree = True
        for _ in range(trials):
            candidates = random_instance(n_elements, n_candidates, rng)
            started = time.perf_counter()
            enum_solution = solve_enumerate(n_elements, candidates)
            enum_times.append((time.perf_counter() - started) * 1000)
            started = time.perf_counter()
            dp_solution = solve_dp(n_elements, candidates)
            dp_times.append((time.perf_counter() - started) * 1000)
            greedy_solution = solve_greedy(n_elements, candidates)
            assert enum_solution and dp_solution and greedy_solution
            if abs(enum_solution.cost - dp_solution.cost) > 1e-6:
                agree = False
            ratios.append(greedy_solution.cost / dp_solution.cost)
        enum_mean = statistics.mean(enum_times)
        dp_mean = statistics.mean(dp_times)
        table.add(
            n_candidates,
            n_elements,
            round(enum_mean, 3),
            round(dp_mean, 3),
            round(enum_mean / dp_mean, 1) if dp_mean else float("inf"),
            round(statistics.mean(ratios), 3),
            "yes" if agree else "NO",
        )
    return table
