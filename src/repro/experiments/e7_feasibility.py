"""E7 (Table 3): who finds feasible plans at all.

Over a batch of random queries on a mid-richness source, the fraction of
queries each strategy can plan.  Reproduces the paper's qualitative
claims: Naive plans only what the form takes verbatim; DISCO adds only
the full-download option ("fails to generate feasible plans for both the
example queries of Section 1"); CNF and DNF split but only along their
normal form; GenCompact subsumes all of them, and GenModular (with
sufficient budget) matches GenCompact.
"""

from __future__ import annotations

from repro.experiments.common import cost_model_for, default_planners
from repro.experiments.report import Table
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def run(quick: bool = False, seed: int = 707) -> Table:
    table = Table(
        "E7: feasibility rate per strategy",
        ["planner", "queries", "feasible", "rate"],
        notes="Random queries (3-6 atoms) over several richness-0.5 "
              "sources, some of which allow full download.",
    )
    per_size = 3 if quick else 10
    sources_and_queries = []
    for world_seed in (seed, seed + 1, seed + 2, seed + 3):
        config = WorldConfig(
            n_attributes=6,
            n_rows=2000,
            richness=0.5,
            download_prob=0.5,
            seed=world_seed,
        )
        source = make_source(config)
        cost_model = cost_model_for(source)
        for n_atoms in (3, 4, 5, 6):
            for query in make_queries(
                config, source, per_size, n_atoms, seed=world_seed + n_atoms
            ):
                sources_and_queries.append((source, cost_model, query))
    for planner in default_planners():
        feasible = sum(
            planner.plan(query, source, cost_model).feasible
            for source, cost_model, query in sources_and_queries
        )
        total = len(sources_and_queries)
        table.add(planner.name, total, feasible, round(feasible / total, 2))
    return table
