"""E3 (Figure I): plan-generation time vs query size.

GenCompact vs GenModular over random condition trees of 3..N atoms on a
synthetic capability-limited source.  The paper's claim: GenCompact
generates plans of the same quality "in a much more efficient manner";
GenModular's cost explodes with query size (rewrite space x exhaustive
EPG) while GenCompact stays flat.

GenModular runs under a fixed rewrite budget -- the honest way to run an
unbounded scheme -- so at larger sizes it is *both* slower and worse
(its budget stops covering the rewrite space where the good plans
live); the quality gap is reported in the last column.
"""

from __future__ import annotations

import statistics

from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def run(quick: bool = False, seed: int = 404) -> Table:
    table = Table(
        "E3: plan-generation time vs number of atomic conditions",
        ["atoms", "queries", "GenCompact ms", "GenModular ms", "speedup",
         "GC wins cost", "tie", "GM wins cost"],
        notes=(
            "Mean wall-clock planning time per query.  The last three "
            "columns count which scheme found the cheaper plan "
            "(GenModular under a 60-CT rewrite budget)."
        ),
    )
    sizes = (3, 4, 5, 6) if quick else (3, 4, 5, 6, 7, 8)
    per_point = 5 if quick else 15
    config = WorldConfig(n_attributes=6, n_rows=3000, richness=0.7, seed=seed)
    source = make_source(config)
    cost_model = cost_model_for(source)
    gencompact = GenCompact()
    genmodular = GenModular(max_rewrites=60, use_closed_description=True)
    for n_atoms in sizes:
        queries = make_queries(
            config, source, per_point, n_atoms, seed=seed * 1000 + n_atoms
        )
        # Warm the shared Check/statistics caches so neither scheme pays
        # the one-time parser and stats costs inside its measured run.
        for query in queries:
            gencompact.plan(query, source, cost_model)
            genmodular.plan(query, source, cost_model)
        gc_times, gm_times = [], []
        gc_wins = ties = gm_wins = 0
        for query in queries:
            gc = gencompact.plan(query, source, cost_model)
            gm = genmodular.plan(query, source, cost_model)
            gc_times.append(gc.stats.elapsed_sec * 1000)
            gm_times.append(gm.stats.elapsed_sec * 1000)
            if gc.cost < gm.cost - 1e-9:
                gc_wins += 1
            elif gm.cost < gc.cost - 1e-9:
                gm_wins += 1
            else:
                ties += 1
        gc_mean = statistics.mean(gc_times)
        gm_mean = statistics.mean(gm_times)
        table.add(
            n_atoms,
            len(queries),
            round(gc_mean, 2),
            round(gm_mean, 2),
            round(gm_mean / gc_mean, 1) if gc_mean else float("inf"),
            gc_wins,
            ties,
            gm_wins,
        )
    return table
