"""Shared plumbing for the experiment suite."""

from __future__ import annotations

from repro.planners.base import Planner, PlanningResult
from repro.planners.baselines import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    NaivePlanner,
)
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.plans.cost import CostModel
from repro.query import TargetQuery
from repro.source.source import CapabilitySource

#: The paper's cost constants used throughout the experiments.
K1 = 100.0
K2 = 1.0


def cost_model_for(source: CapabilitySource) -> CostModel:
    return CostModel({source.name: source.stats}, K1, K2)


def default_planners(genmodular_budget: int = 60) -> list[Planner]:
    """The scheme lineup the plan-quality experiments compare."""
    return [
        GenCompact(),
        GenModular(max_rewrites=genmodular_budget),
        CNFPlanner(),
        DNFPlanner(),
        DiscoPlanner(),
        NaivePlanner(),
    ]


def plan_with(
    planner: Planner, query: TargetQuery, source: CapabilitySource
) -> PlanningResult:
    return planner.plan(query, source, cost_model_for(source))


def fmt_cost(result: PlanningResult) -> str:
    return f"{result.cost:.1f}" if result.feasible else "infeasible"
