"""E4 (Figure II): search-space size vs query size.

How many condition trees each scheme processes and how many plans /
sub-plans it examines.  The paper's pitch for GenCompact is precisely
that it "efficiently explores large spaces of plans by employing special
structures ... for compactly representing groups of related plans":
GenModular materializes the plan space (counted exactly through the
Choice trees), GenCompact touches only sub-plan table entries.
"""

from __future__ import annotations

import statistics

from repro.experiments.common import cost_model_for
from repro.experiments.report import Table
from repro.planners.gencompact import GenCompact
from repro.planners.genmodular import GenModular
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def run(quick: bool = False, seed: int = 404) -> Table:
    table = Table(
        "E4: search-space size vs number of atomic conditions",
        ["atoms", "GM CTs", "GM plans", "GM checks", "GC CTs", "GC subplans",
         "GC checks"],
        notes=(
            "GM plans = concrete plans represented by GenModular's Choice "
            "trees (summed over CTs); GC subplans = sub-plan table entries "
            "IPG recorded.  Check columns count Check() requests."
        ),
    )
    sizes = (3, 4, 5) if quick else (3, 4, 5, 6, 7)
    per_point = 5 if quick else 12
    config = WorldConfig(n_attributes=6, n_rows=3000, richness=0.7, seed=seed)
    source = make_source(config)
    cost_model = cost_model_for(source)
    gencompact = GenCompact()
    genmodular = GenModular(max_rewrites=60, use_closed_description=True)
    for n_atoms in sizes:
        queries = make_queries(
            config, source, per_point, n_atoms, seed=seed * 1000 + n_atoms
        )
        gm_cts, gm_plans, gm_checks = [], [], []
        gc_cts, gc_sub, gc_checks = [], [], []
        for query in queries:
            gm = genmodular.plan(query, source, cost_model)
            gc = gencompact.plan(query, source, cost_model)
            gm_cts.append(gm.stats.cts_processed)
            gm_plans.append(gm.stats.subplans_considered)
            gm_checks.append(gm.stats.check_calls)
            gc_cts.append(gc.stats.cts_processed)
            gc_sub.append(gc.stats.subplans_considered)
            gc_checks.append(gc.stats.check_calls)
        table.add(
            n_atoms,
            round(statistics.mean(gm_cts), 1),
            round(statistics.mean(gm_plans), 1),
            round(statistics.mean(gm_checks), 1),
            round(statistics.mean(gc_cts), 1),
            round(statistics.mean(gc_sub), 1),
            round(statistics.mean(gc_checks), 1),
        )
    return table
