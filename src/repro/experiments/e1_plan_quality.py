"""E1 (Table 1): plan quality on the paper's motivating queries.

For each fixed scenario (Examples 1.1 and 1.2 plus the Section 4 bank
query) and each strategy, report feasibility, the estimated Eq. 1 cost,
the number of source queries the plan issues, and the estimated tuples
transferred.  The paper's claims to reproduce:

* Example 1.1 -- DNF (= GenCompact) wins; CNF retrieves every
  title-matching book; DISCO and Naive have no plan.
* Example 1.2 -- GenCompact's two-query plan beats the four-query DNF
  plan and the CNF plan; DISCO and Naive have no plan.
"""

from __future__ import annotations

from repro.experiments.common import default_planners, plan_with
from repro.experiments.report import Table
from repro.workloads.scenarios import (
    bank_scenario,
    bookstore_scenario,
    car_scenario,
)


def scenarios(quick: bool) -> list:
    """The three fixed scenarios, smaller data in quick mode."""
    if quick:
        return [bookstore_scenario(3000), car_scenario(2000), bank_scenario(1000)]
    return [bookstore_scenario(), car_scenario(), bank_scenario()]


def run(quick: bool = False) -> Table:
    table = Table(
        "E1: plan quality on the paper's scenarios (estimated)",
        ["scenario", "planner", "feasible", "est cost", "source queries",
         "est tuples"],
        notes=(
            "Costs under Eq. 1 with k1=100, k2=1.  'source queries' counts "
            "SP leaves of the chosen plan; 'est tuples' the estimated sum "
            "of their result sizes."
        ),
    )
    for scenario in scenarios(quick):
        source = scenario.source
        for planner in default_planners():
            result = plan_with(planner, scenario.query, source)
            if result.feasible:
                queries = list(result.plan.source_queries())
                est_tuples = sum(
                    source.stats.estimated_rows(q.condition) for q in queries
                )
                table.add(
                    scenario.name,
                    result.planner,
                    "yes",
                    round(result.cost, 1),
                    len(queries),
                    round(est_tuples, 1),
                )
            else:
                table.add(scenario.name, result.planner, "no", float("inf"), 0, 0)
    return table
