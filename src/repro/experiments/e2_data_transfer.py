"""E2 (Table 2): measured data transfer executing the chosen plans.

Executes every feasible plan from E1's lineup against the simulated
sources and reports what the meters saw: queries issued, tuples
transferred, measured Eq. 1 cost -- plus a correctness check against
direct evaluation of the target query on the full relation.

This is the ground-truth counterpart of E1: the estimated ordering of
strategies should survive contact with actual data.
"""

from __future__ import annotations

from repro.experiments.common import K1, K2, default_planners, plan_with
from repro.experiments.e1_plan_quality import scenarios
from repro.experiments.report import Table
from repro.plans.execute import Executor, reference_answer


def run(quick: bool = False) -> Table:
    table = Table(
        "E2: measured execution of the chosen plans",
        ["scenario", "planner", "queries", "tuples moved", "measured cost",
         "answer rows", "correct"],
        notes=(
            "'correct' compares the plan's result with direct evaluation "
            "of SP(C, A, R) on the full relation."
        ),
    )
    for scenario in scenarios(quick):
        source = scenario.source
        executor = Executor({source.name: source})
        expected = reference_answer(
            source, scenario.query.condition, scenario.query.attributes
        ).as_row_set()
        for planner in default_planners():
            result = plan_with(planner, scenario.query, source)
            if not result.feasible:
                table.add(scenario.name, result.planner, 0, 0, float("inf"), 0, "n/a")
                continue
            source.meter.reset()
            report = executor.execute_with_report(result.plan)
            correct = report.result.as_row_set() == expected
            table.add(
                scenario.name,
                result.planner,
                report.queries,
                report.tuples_transferred,
                round(report.measured_cost(K1, K2), 1),
                len(report.result),
                "yes" if correct else "NO",
            )
    return table
