"""The reconstructed evaluation suite (see DESIGN.md for the index).

Each ``eN_*`` module exposes ``run(quick=False) -> Table``.  Run all of
them from the command line::

    python -m repro.experiments            # full suite
    python -m repro.experiments --quick    # smaller instances
    python -m repro.experiments e1 e5      # a subset
"""

from repro.experiments import (
    e1_plan_quality,
    e2_data_transfer,
    e3_planning_time,
    e4_search_space,
    e5_pruning,
    e6_capability_richness,
    e7_feasibility,
    e8_mcsc,
    e9_commutativity,
    e10_cost_sensitivity,
)
from repro.experiments.report import Table

EXPERIMENTS = {
    "e1": e1_plan_quality.run,
    "e2": e2_data_transfer.run,
    "e3": e3_planning_time.run,
    "e4": e4_search_space.run,
    "e5": e5_pruning.run,
    "e6": e6_capability_richness.run,
    "e7": e7_feasibility.run,
    "e8": e8_mcsc.run,
    "e9": e9_commutativity.run,
    "e10": e10_cost_sensitivity.run,
}

__all__ = ["EXPERIMENTS", "Table"]
