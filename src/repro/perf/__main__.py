"""``python -m repro.perf``: the perf-trajectory CLI.

::

    python -m repro.perf compare                  # self-check the
                                                  # committed trajectory
    python -m repro.perf compare --fresh DIR      # gate a fresh run
    python -m repro.perf compare --run            # re-run the smoke
                                                  # benches, then gate
    python -m repro.perf report                   # ASCII trend table

``compare`` exits 0 when every bar holds and no gated metric regressed
past its tolerance, 1 otherwise -- which is exactly what CI keys on.
``--run`` re-executes each committed benchmark's pytest module with
``REPRO_BENCH_RESULTS`` pointed at a scratch directory, so the
committed files are never clobbered by the measurement run.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile

from repro.perf.compare import (
    compare_trajectories,
    render_compare,
    render_report,
)
from repro.perf.schema import SchemaError, load_trajectory

#: The default trajectory location, relative to the working directory.
DEFAULT_RESULTS = pathlib.Path("benchmarks") / "results"


def _bench_module(name: str, root: pathlib.Path) -> pathlib.Path | None:
    """The pytest module that produces ``BENCH_<name>.json``."""
    matches = sorted((root / "benchmarks").glob(f"test_{name}_*.py"))
    return matches[0] if matches else None


def run_benchmarks(baseline_dir: pathlib.Path, fresh_dir: pathlib.Path,
                   only: list[str] | None = None) -> list[str]:
    """Re-run the benchmark modules behind the committed trajectory.

    Returns the benchmarks actually re-run; prints a warning for any
    committed benchmark whose module cannot be located.
    """
    root = baseline_dir.parent.parent
    names = sorted(load_trajectory(baseline_dir)) if not only else only
    ran: list[str] = []
    for name in names:
        module = _bench_module(name, root)
        if module is None:
            print(f"warning: no benchmark module for {name!r}; skipping",
                  file=sys.stderr)
            continue
        env = dict(os.environ)
        env["REPRO_BENCH_RESULTS"] = str(fresh_dir)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(root / "src"), env.get("PYTHONPATH", "")])
        )
        print(f"perf: running {module.name} ...", flush=True)
        completed = subprocess.run(
            [sys.executable, "-m", "pytest", str(module), "-q",
             "--benchmark-disable", "-p", "no:cacheprovider"],
            cwd=root, env=env,
        )
        if completed.returncode != 0:
            print(f"warning: {module.name} exited "
                  f"{completed.returncode}", file=sys.stderr)
        ran.append(name)
    return ran


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Validate, compare and report the committed "
                    "benchmark trajectory (BENCH_*.json).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    compare = commands.add_parser(
        "compare",
        help="gate a fresh run against the committed trajectory "
             "(exit 1 on any bar violation or tolerated-metric "
             "regression)",
    )
    compare.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_RESULTS,
        help=f"committed trajectory directory (default {DEFAULT_RESULTS})",
    )
    compare.add_argument(
        "--fresh", type=pathlib.Path, default=None,
        help="fresh BENCH directory to gate (default: the baseline "
             "itself -- a pure validation + bars self-check)",
    )
    compare.add_argument(
        "--run", action="store_true",
        help="re-run the committed benchmarks into a scratch directory "
             "first (mutually exclusive with --fresh)",
    )
    compare.add_argument(
        "--only", nargs="*", metavar="BENCH", default=None,
        help="with --run: re-run only these benchmarks (e.g. x13 x14)",
    )
    compare.add_argument(
        "--require-all", action="store_true",
        help="fail if any committed benchmark is missing from the "
             "fresh run",
    )

    report = commands.add_parser(
        "report", help="render the committed trajectory as a trend table",
    )
    report.add_argument(
        "--results", type=pathlib.Path, default=DEFAULT_RESULTS,
        help=f"trajectory directory (default {DEFAULT_RESULTS})",
    )

    args = parser.parse_args(argv)

    try:
        if args.command == "report":
            trajectory = load_trajectory(args.results)
            if not trajectory:
                print(f"error: no BENCH_*.json under {args.results}",
                      file=sys.stderr)
                return 1
            print(render_report(trajectory))
            return 0

        if args.run and args.fresh is not None:
            parser.error("--run and --fresh are mutually exclusive")
        if args.run:
            with tempfile.TemporaryDirectory(prefix="repro-perf-") as scratch:
                fresh = pathlib.Path(scratch)
                run_benchmarks(args.baseline, fresh, only=args.only)
                verdict = compare_trajectories(
                    args.baseline, fresh, require_all=args.require_all
                )
                print(render_compare(verdict))
        else:
            fresh = args.fresh if args.fresh is not None else args.baseline
            verdict = compare_trajectories(
                args.baseline, fresh, require_all=args.require_all
            )
            print(render_compare(verdict))
        return 0 if verdict.ok else 1
    except (SchemaError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
