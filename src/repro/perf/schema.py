"""The shared BENCH JSON schema every X-benchmark emits.

One result file per benchmark, ``BENCH_<name>.json``, four load-bearing
sections:

* ``metrics`` -- a flat ``dotted.name -> number`` map (booleans allowed,
  serialized as ``true``/``false``).  Dotted names group related
  readings (``check.speedup``, ``templates.combined_hit_rate``) without
  nesting, so comparison code never walks structure.
* ``bars`` -- the benchmark's *absolute* acceptance criteria: per
  metric, an operator (``>=``, ``<=``, ``==``) and a bound.  Bars are
  enforced on every run, baseline and fresh alike -- a committed result
  violating its own bars is itself a gate failure.
* ``tolerances`` -- the *relative* regression policy: per metric, how
  far a fresh value may drift from the committed one before the gate
  fails.  ``direction: "higher"`` means higher-is-better (a drop past
  the slack is a regression); ``"lower"`` means lower-is-better.
  Metrics without a tolerance are informational: recorded, rendered,
  never gated on drift (raw wall-clock numbers land here -- they
  depend on the machine; ratios and counts get tolerances).
* ``seed`` / ``quick`` / ``env`` -- reproducibility: the workload seed,
  whether the quick configuration ran, and the interpreter/platform
  fingerprint of the recording machine.

:class:`BenchResult` round-trips the schema losslessly and
:meth:`BenchResult.validate` rejects anything malformed -- unknown
operators, bars or tolerances naming absent metrics, non-numeric
values -- so a corrupt trajectory fails loudly at load time, not as a
silent non-comparison.
"""

from __future__ import annotations

import json
import pathlib
import platform
from dataclasses import dataclass, field
from typing import Any, Mapping

SCHEMA_VERSION = 1

#: Bar operators and their meaning against the bound.
_OPERATORS = {
    ">=": lambda value, bound: value >= bound,
    "<=": lambda value, bound: value <= bound,
    "==": lambda value, bound: value == bound,
}

_DIRECTIONS = ("higher", "lower")


class SchemaError(ValueError):
    """A BENCH payload that does not conform to the schema."""


def env_fingerprint(quick: bool | None = None) -> dict[str, Any]:
    """The recording environment: enough to explain a timing delta."""
    fingerprint: dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
    }
    if quick is not None:
        fingerprint["quick"] = quick
    return fingerprint


@dataclass(frozen=True)
class Bar:
    """An absolute acceptance criterion on one metric."""

    op: str
    value: float

    def holds(self, observed: float) -> bool:
        return _OPERATORS[self.op](observed, self.value)

    def __str__(self) -> str:
        return f"{self.op} {self.value:g}"


@dataclass(frozen=True)
class Tolerance:
    """The allowed drift of one metric from its committed value.

    ``rel`` is a fraction of the committed value, ``abs`` an absolute
    slack; both apply (a fresh value inside *either* slack passes, so a
    tiny committed value doesn't make the relative band vanish).
    """

    direction: str = "higher"
    rel: float = 0.0
    abs: float = 0.0

    def allows(self, committed: float, fresh: float) -> bool:
        slack = max(self.rel * abs(committed), self.abs)
        if self.direction == "higher":
            return fresh >= committed - slack
        return fresh <= committed + slack

    def __str__(self) -> str:
        parts = [self.direction]
        if self.rel:
            parts.append(f"rel {self.rel:g}")
        if self.abs:
            parts.append(f"abs {self.abs:g}")
        return " ".join(parts)


@dataclass
class BenchResult:
    """One benchmark's machine-readable result (one BENCH_*.json)."""

    benchmark: str
    metrics: dict[str, float]
    bars: dict[str, Bar] = field(default_factory=dict)
    tolerances: dict[str, Tolerance] = field(default_factory=dict)
    seed: int | None = None
    env: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Every schema violation in this result (empty = conforming)."""
        problems: list[str] = []
        if self.schema_version != SCHEMA_VERSION:
            problems.append(
                f"schema_version {self.schema_version!r} is not "
                f"{SCHEMA_VERSION}"
            )
        if not self.benchmark or not all(
            ch.isalnum() or ch == "_" for ch in self.benchmark
        ):
            problems.append(f"benchmark name {self.benchmark!r} is not a "
                            "[a-z0-9_] identifier")
        if not self.metrics:
            problems.append("no metrics recorded")
        for name, value in self.metrics.items():
            # bools are fine (True/False serialize and compare as 1/0).
            if not isinstance(value, (int, float)):
                problems.append(f"metric {name!r} is {type(value).__name__}, "
                                "not a number")
            elif isinstance(value, float) and (
                value != value or value in (float("inf"), float("-inf"))
            ):
                problems.append(f"metric {name!r} is non-finite ({value!r})")
        for name, bar in self.bars.items():
            if name not in self.metrics:
                problems.append(f"bar on unknown metric {name!r}")
            if bar.op not in _OPERATORS:
                problems.append(f"bar {name!r} has unknown op {bar.op!r}")
            if not isinstance(bar.value, (int, float)) \
                    or isinstance(bar.value, bool):
                problems.append(f"bar {name!r} bound is not a number")
        for name, tolerance in self.tolerances.items():
            if name not in self.metrics:
                problems.append(f"tolerance on unknown metric {name!r}")
            if tolerance.direction not in _DIRECTIONS:
                problems.append(
                    f"tolerance {name!r} direction {tolerance.direction!r} "
                    f"is not one of {_DIRECTIONS}"
                )
            if not isinstance(tolerance.rel, (int, float)) \
                    or tolerance.rel < 0:
                problems.append(f"tolerance {name!r} rel must be >= 0")
            if not isinstance(tolerance.abs, (int, float)) \
                    or tolerance.abs < 0:
                problems.append(f"tolerance {name!r} abs must be >= 0")
        if self.seed is not None and (not isinstance(self.seed, int)
                                      or isinstance(self.seed, bool)):
            problems.append(f"seed {self.seed!r} is not an int")
        return problems

    # ------------------------------------------------------------------
    def to_payload(self) -> dict[str, Any]:
        """The JSON-ready dict (sorted keys happen at dump time)."""
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "seed": self.seed,
            "env": dict(self.env),
            "metrics": {
                name: value for name, value in self.metrics.items()
            },
            "bars": {
                name: {"op": bar.op, "value": bar.value}
                for name, bar in self.bars.items()
            },
            "tolerances": {
                name: {
                    "direction": tolerance.direction,
                    "rel": tolerance.rel,
                    "abs": tolerance.abs,
                }
                for name, tolerance in self.tolerances.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BenchResult":
        """Parse a BENCH payload; raises :class:`SchemaError` on shape
        errors (wrong containers / missing sections) and returns a
        result whose :meth:`validate` reports value-level problems."""
        if not isinstance(payload, Mapping):
            raise SchemaError("BENCH payload is not an object")
        for section in ("benchmark", "metrics"):
            if section not in payload:
                raise SchemaError(f"BENCH payload misses {section!r}")
        metrics = payload["metrics"]
        bars = payload.get("bars", {})
        tolerances = payload.get("tolerances", {})
        for name, section in (("metrics", metrics), ("bars", bars),
                              ("tolerances", tolerances)):
            if not isinstance(section, Mapping):
                raise SchemaError(f"{name} is not an object")
        try:
            parsed_bars = {
                name: Bar(op=str(spec["op"]), value=spec["value"])
                for name, spec in bars.items()
            }
            parsed_tolerances = {
                name: Tolerance(
                    direction=str(spec.get("direction", "higher")),
                    rel=spec.get("rel", 0.0),
                    abs=spec.get("abs", 0.0),
                )
                for name, spec in tolerances.items()
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise SchemaError(f"malformed bar/tolerance entry: {exc}")
        return cls(
            benchmark=str(payload["benchmark"]),
            metrics=dict(metrics),
            bars=parsed_bars,
            tolerances=parsed_tolerances,
            seed=payload.get("seed"),
            env=dict(payload.get("env", {})),
            schema_version=payload.get("schema_version", -1),
        )

    # ------------------------------------------------------------------
    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )
        return path


def load_result(path: str | pathlib.Path) -> BenchResult:
    """Load and shape-check one BENCH file (value checks via
    ``validate()``); raises :class:`SchemaError` on unparseable input."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path.name}: not JSON ({exc})")
    return BenchResult.from_payload(payload)


def load_trajectory(directory: str | pathlib.Path
                    ) -> dict[str, BenchResult]:
    """Every ``BENCH_*.json`` under ``directory``, keyed by benchmark.

    A file whose ``benchmark`` field disagrees with its filename stem is
    a :class:`SchemaError` -- the trajectory must be navigable by name.
    """
    directory = pathlib.Path(directory)
    trajectory: dict[str, BenchResult] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        result = load_result(path)
        expected = path.stem[len("BENCH_"):]
        if result.benchmark != expected:
            raise SchemaError(
                f"{path.name}: benchmark field {result.benchmark!r} does "
                f"not match the filename ({expected!r})"
            )
        trajectory[result.benchmark] = result
    return trajectory
