"""The perf-trajectory gate: universal BENCH JSON and regression checks.

Every X-benchmark writes a machine-readable result file
(``benchmarks/results/BENCH_x*.json``) in one shared schema
(:mod:`repro.perf.schema`): flat metrics, the enforced acceptance
**bars**, per-metric regression **tolerances**, the seed and an
environment fingerprint.  The committed set of those files is the
repository's *perf trajectory* -- the measured record of every speedup
the README claims.

``python -m repro.perf`` keeps the trajectory honest:

* ``compare`` -- validate a fresh run against the committed trajectory:
  every bar must hold, and every metric with a tolerance must not
  regress past it.  Exits nonzero on any violation (the CI gate).
* ``report`` -- render the committed trajectory as an ASCII trend
  table: benchmark x metric, value, bar, headroom.

See :mod:`repro.perf.compare` for the comparison semantics and
``benchmarks/conftest.py`` (the ``record_bench`` fixture) for how
benchmarks emit results.
"""

from repro.perf.schema import (
    SCHEMA_VERSION,
    Bar,
    BenchResult,
    SchemaError,
    Tolerance,
    env_fingerprint,
    load_result,
    load_trajectory,
)
from repro.perf.compare import (
    MetricOutcome,
    check_bars,
    compare_results,
    compare_trajectories,
)

__all__ = [
    "Bar",
    "BenchResult",
    "MetricOutcome",
    "SCHEMA_VERSION",
    "SchemaError",
    "Tolerance",
    "check_bars",
    "compare_results",
    "compare_trajectories",
    "env_fingerprint",
    "load_result",
    "load_trajectory",
]
