"""Trajectory comparison: bars, tolerances, and the gate verdict.

Three layers, each returning data the CLI renders:

* :func:`check_bars` -- one result against its own absolute bars;
* :func:`compare_results` -- a fresh result against the committed one:
  bars on the fresh values plus per-metric drift within tolerance;
* :func:`compare_trajectories` -- two directories of BENCH files (the
  committed ``benchmarks/results/`` vs. a fresh run), producing a
  :class:`CompareReport` whose ``violations`` list *is* the gate: empty
  means pass, anything else means ``python -m repro.perf compare``
  exits nonzero.

Semantics worth pinning:

* A fresh benchmark **missing from the baseline** is new work: bars are
  enforced, drift is not (there is nothing to drift from).
* A baseline benchmark **missing from the fresh run** is *skipped*, not
  failed -- CI re-runs a smoke subset, and a skipped benchmark's
  committed file was already bar-checked when loaded.  ``require_all``
  flips skips into violations for full-gate runs.
* A metric that **disappears** from a benchmark while carrying a
  tolerance is a violation: deleting the measurement is not a way to
  pass the gate.
* Tolerances come from the **fresh** file -- the checked-out code
  defines the policy, and loosening one is a reviewable diff, never a
  silent runtime decision.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from repro.perf.schema import BenchResult, load_trajectory


@dataclass
class MetricOutcome:
    """One metric's verdict inside a comparison."""

    benchmark: str
    metric: str
    fresh: float
    baseline: float | None = None
    bar: str = ""
    bar_ok: bool = True
    tolerance: str = ""
    tolerance_ok: bool = True
    note: str = ""

    @property
    def ok(self) -> bool:
        return self.bar_ok and self.tolerance_ok


def check_bars(result: BenchResult) -> list[str]:
    """Violation messages for a result failing its own bars."""
    violations = []
    for metric, bar in sorted(result.bars.items()):
        observed = result.metrics.get(metric)
        if observed is None:
            violations.append(
                f"{result.benchmark}: bar on missing metric {metric!r}"
            )
        elif not bar.holds(observed):
            violations.append(
                f"{result.benchmark}: {metric} = {observed:g} violates "
                f"bar {bar}"
            )
    return violations


def compare_results(
    baseline: BenchResult | None, fresh: BenchResult
) -> tuple[list[MetricOutcome], list[str]]:
    """Per-metric outcomes plus violation messages for one benchmark."""
    outcomes: list[MetricOutcome] = []
    violations = check_bars(fresh)
    failed_bars = {
        metric for metric, bar in fresh.bars.items()
        if metric in fresh.metrics
        and not bar.holds(fresh.metrics[metric])
    }
    committed = baseline.metrics if baseline is not None else {}
    for metric in sorted(fresh.metrics):
        value = fresh.metrics[metric]
        bar = fresh.bars.get(metric)
        tolerance = fresh.tolerances.get(metric)
        outcome = MetricOutcome(
            benchmark=fresh.benchmark,
            metric=metric,
            fresh=float(value),
            baseline=(float(committed[metric])
                      if metric in committed else None),
            bar=str(bar) if bar is not None else "",
            bar_ok=metric not in failed_bars,
            tolerance=str(tolerance) if tolerance is not None else "",
        )
        if tolerance is not None and metric in committed:
            outcome.tolerance_ok = tolerance.allows(
                float(committed[metric]), float(value)
            )
            if not outcome.tolerance_ok:
                outcome.note = "regressed past tolerance"
                violations.append(
                    f"{fresh.benchmark}: {metric} regressed "
                    f"{float(committed[metric]):g} -> {float(value):g} "
                    f"(tolerance {tolerance})"
                )
        outcomes.append(outcome)
    if baseline is not None:
        for metric in sorted(baseline.tolerances):
            if metric in baseline.metrics and metric not in fresh.metrics:
                violations.append(
                    f"{fresh.benchmark}: gated metric {metric!r} "
                    "disappeared from the fresh run"
                )
    return outcomes, violations


@dataclass
class CompareReport:
    """The whole gate's verdict: per-metric outcomes and violations."""

    outcomes: list[MetricOutcome] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    compared: list[str] = field(default_factory=list)
    new: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def compare_trajectories(
    baseline_dir: str | pathlib.Path,
    fresh_dir: str | pathlib.Path,
    require_all: bool = False,
) -> CompareReport:
    """Gate a fresh BENCH directory against the committed trajectory."""
    report = CompareReport()
    baseline = load_trajectory(baseline_dir)
    fresh = load_trajectory(fresh_dir)
    for name, result in sorted(fresh.items()):
        problems = result.validate()
        if problems:
            report.violations.extend(
                f"{name}: {problem}" for problem in problems
            )
            continue
        committed = baseline.get(name)
        if committed is None:
            report.new.append(name)
        else:
            report.compared.append(name)
        outcomes, violations = compare_results(committed, result)
        report.outcomes.extend(outcomes)
        report.violations.extend(violations)
    for name in sorted(set(baseline) - set(fresh)):
        report.skipped.append(name)
        if require_all:
            report.violations.append(
                f"{name}: in the committed trajectory but missing from "
                "the fresh run (--require-all)"
            )
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_compare(report: CompareReport) -> str:
    """The compare verdict as an ASCII table plus a verdict line."""
    lines = [
        f"{'benchmark':<10} {'metric':<34} {'baseline':>12} {'fresh':>12} "
        f"{'bar':<10} {'tolerance':<16} verdict"
    ]
    lines.append("-" * len(lines[0]))
    for outcome in report.outcomes:
        verdict = "ok"
        if not outcome.bar_ok:
            verdict = "BAR FAILED"
        elif not outcome.tolerance_ok:
            verdict = "REGRESSED"
        baseline = ("-" if outcome.baseline is None
                    else _format_value(outcome.baseline))
        lines.append(
            f"{outcome.benchmark:<10} {outcome.metric:<34} {baseline:>12} "
            f"{_format_value(outcome.fresh):>12} {outcome.bar:<10} "
            f"{outcome.tolerance:<16} {verdict}"
        )
    summary = [
        f"compared {len(report.compared)}",
        f"new {len(report.new)}",
        f"skipped {len(report.skipped)}",
    ]
    if report.skipped:
        summary.append(f"(skipped: {', '.join(report.skipped)})")
    lines.append("")
    lines.append("perf gate: " + ", ".join(summary))
    if report.violations:
        lines.append("")
        lines.append(f"VIOLATIONS ({len(report.violations)}):")
        lines.extend(f"  - {violation}" for violation in report.violations)
    else:
        lines.append("perf gate: PASS")
    return "\n".join(lines)


def render_report(trajectory: dict[str, BenchResult]) -> str:
    """The committed trajectory as an ASCII trend table."""
    lines = [
        f"perf trajectory -- {len(trajectory)} benchmarks",
        "",
        f"{'benchmark':<10} {'metric':<34} {'value':>12} {'bar':<10} "
        f"{'headroom':>9} {'tolerance':<16} {'env':<14}",
    ]
    lines.append("-" * len(lines[2]))
    for name in sorted(trajectory):
        result = trajectory[name]
        env = f"py{result.env.get('python', '?')}"
        if result.env.get("quick"):
            env += " quick"
        for metric in sorted(result.metrics):
            value = float(result.metrics[metric])
            bar = result.bars.get(metric)
            headroom = ""
            if bar is not None and bar.value:
                if bar.op == ">=":
                    headroom = f"{(value - bar.value) / abs(bar.value):+.0%}"
                elif bar.op == "<=":
                    headroom = f"{(bar.value - value) / abs(bar.value):+.0%}"
            tolerance = result.tolerances.get(metric)
            lines.append(
                f"{name:<10} {metric:<34} {_format_value(value):>12} "
                f"{str(bar) if bar else '':<10} {headroom:>9} "
                f"{str(tolerance) if tolerance else '':<16} {env:<14}"
            )
    return "\n".join(lines)
