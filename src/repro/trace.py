"""Trace one query end to end: ``python -m repro.trace "<SELECT ...>"``.

The one-command answer to "why is this query slow / why was this plan
picked": plans and executes the query against the library catalog with
a recording :class:`~repro.observability.Tracer` installed, then
prints

* the chosen plan and its estimated cost,
* the execution report (wall-clock, queries, tuples, retries,
  per-source traffic breakdown),
* the full span timeline -- mediator, planner phases (rewrite / mark /
  generate / cost, with sub-plan count Q and PR1-PR3 pruning-rule
  fire counts), per-source-call spans (attempts, retries, backoff,
  worker slot) and per-source service spans (queue wait, latency).

Options: ``--planner`` picks the scheme, ``--workers N`` executes on
the parallel executor (the timeline then shows worker threads),
``--metrics`` appends the metrics-registry snapshot, ``--jsonl PATH``
exports the spans for offline tooling.

Serving options: ``--plan-cache N`` enables the canonical plan cache
and runs the query **twice** -- the second ``mediator.ask`` tree in
the timeline carries a ``plan.cache_hit`` event, the one-screen proof
that planning was amortized.  ``--max-in-flight N`` installs admission
control (sheds with ``OverloadError`` under overload).  ``--loadgen
TxR`` replays the query from ``T`` client threads for ``R`` total
requests through the same mediator and prints the throughput /
p50/p95/p99 report.

Telemetry options: ``--sample RATIO`` traces with a
:class:`~repro.observability.SamplingTracer` (head ratio + tail keep
rules) instead of the full recorder and prints its keep/drop stats;
``--slo MS`` arms the latency objective (SLO tracker + slow-query
log); ``--slowlog`` prints the slow-query log after the run (with an
objective of 0 ms when ``--slo`` was not given, so every ask logs);
``--serve PORT`` starts the stdlib :class:`TelemetryServer` (0 =
ephemeral port), scrapes its ``/metrics`` and ``/health`` over real
HTTP and prints both -- the one-command proof the exposition works;
``--profile`` runs with the continuous profiler on and prints the
phase (wall/CPU) and lock-wait breakdown after the run; ``--events``
arms the wide-event request log (one structured event per ask --
trace id, plan fingerprint, planning outcome, latency, outcome) and
prints it after the run.

The catalog is :func:`~repro.source.library.standard_catalog` plus the
Example 4.1 ``cars`` source, so the paper's running example works
verbatim::

    python -m repro.trace "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.mediator import Mediator
from repro.observability import (
    SamplingTracer,
    TelemetryServer,
    Tracer,
    get_metrics,
    render_timeline,
    use_tracer,
    write_jsonl,
)
from repro.source.library import cars, standard_catalog


def build_mediator(planner_name: str = "gencompact",
                   workers: int | None = None,
                   plan_cache: int | None = None,
                   max_in_flight: int | None = None,
                   latency_objective: float | None = None,
                   executor: str | None = None,
                   event_log_entries: int | None = None) -> Mediator:
    """The CLI's mediator: library catalog + Example 4.1's cars source."""
    from repro.__main__ import _make_planner

    mediator = Mediator(
        planner=_make_planner(planner_name), parallel_workers=workers,
        executor=executor,
        plan_cache_entries=plan_cache, max_in_flight=max_in_flight,
        latency_objective=latency_objective,
        event_log_entries=event_log_entries,
    )
    for source in standard_catalog().values():
        mediator.add_source(source)
    mediator.add_source(cars())
    return mediator


def _parse_loadgen(spec: str) -> tuple[int, int]:
    """``TxR`` -> (threads, total requests); e.g. ``4x40``."""
    try:
        threads_text, requests_text = spec.lower().split("x", 1)
        threads, requests = int(threads_text), int(requests_text)
    except ValueError:
        raise SystemExit(
            f"error: --loadgen expects THREADSxREQUESTS (e.g. 4x40), "
            f"got {spec!r}"
        ) from None
    if threads < 1 or requests < 1:
        raise SystemExit("error: --loadgen threads and requests must be >= 1")
    return threads, requests


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Plan + execute one query with tracing on; print the "
                    "span timeline.",
    )
    parser.add_argument("query", help="a SELECT ... FROM ... WHERE ... query")
    parser.add_argument("--planner", default="gencompact",
                        help="gencompact|genmodular|cnf|dnf|disco|naive")
    parser.add_argument("--workers", type=int, default=None,
                        help="execute on a parallel executor with N workers")
    parser.add_argument("--executor", default=None,
                        choices=["serial", "parallel", "async"],
                        help="execution engine (async = event-loop tasks "
                             "with single-flight coalescing; the timeline "
                             "then shows task workers)")
    parser.add_argument("--limit", type=int, default=5,
                        help="max answer rows to print (default 5)")
    parser.add_argument("--width", type=int, default=32,
                        help="timeline bar width in characters")
    parser.add_argument("--metrics", action="store_true",
                        help="also print the metrics-registry snapshot")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="export the spans to PATH as JSON lines")
    parser.add_argument("--plan-cache", type=int, default=None, metavar="N",
                        help="enable an N-entry canonical plan cache and "
                             "run the query twice (the second run's "
                             "timeline shows plan.cache_hit)")
    parser.add_argument("--max-in-flight", type=int, default=None,
                        metavar="N",
                        help="bound concurrent asks with admission control "
                             "(shed via OverloadError past N in flight)")
    parser.add_argument("--loadgen", metavar="TxR", default=None,
                        help="after tracing, replay the query from T client "
                             "threads for R total requests and print the "
                             "throughput/latency report (e.g. 4x40)")
    parser.add_argument("--sample", type=float, default=None,
                        metavar="RATIO",
                        help="trace with a SamplingTracer at this head "
                             "ratio (tail rules keep errors and, with "
                             "--slo, slow traces) and print its stats")
    parser.add_argument("--slo", type=float, default=None, metavar="MS",
                        help="latency objective in ms: arms the SLO "
                             "tracker and the slow-query log")
    parser.add_argument("--slowlog", action="store_true",
                        help="print the slow-query log after the run "
                             "(without --slo the objective is ~0, so "
                             "every ask is logged)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="start the telemetry server (0 = ephemeral "
                             "port), scrape /metrics and /health over "
                             "HTTP and print both")
    parser.add_argument("--profile", action="store_true",
                        help="run with the continuous profiler on and "
                             "print the phase (wall/CPU) and lock-wait "
                             "breakdown after the run")
    parser.add_argument("--events", action="store_true",
                        help="arm the wide-event request log (one "
                             "structured event per ask) and print it "
                             "after the run")
    args = parser.parse_args(argv)

    loadgen = _parse_loadgen(args.loadgen) if args.loadgen else None
    objective = None
    if args.slo is not None:
        if args.slo <= 0:
            raise SystemExit("error: --slo must be a positive number of ms")
        objective = args.slo / 1000.0
    elif args.slowlog:
        objective = 1e-9  # effectively zero: every ask breaches and logs
    try:
        mediator = build_mediator(args.planner, args.workers,
                                  args.plan_cache, args.max_in_flight,
                                  latency_objective=objective,
                                  executor=args.executor,
                                  event_log_entries=256 if args.events
                                  else None)
        if args.sample is not None:
            tracer = SamplingTracer(ratio=args.sample,
                                    slow_threshold=objective)
        else:
            tracer = Tracer()
        session = None
        if args.profile:
            from repro.observability import profile_mediator

            session = profile_mediator(mediator, tracer)
        with use_tracer(tracer):
            answer = mediator.ask(args.query)
            if args.plan_cache is not None:
                # The warm run: same canonical key, so the second
                # mediator.ask tree carries the plan.cache_hit event.
                answer = mediator.ask(args.query)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = answer.report
    print(answer.planning.describe())
    print(
        f"executed in {report.duration_seconds * 1000:.2f} ms: "
        f"{report.queries} source queries, "
        f"{report.tuples_transferred} tuples transferred, "
        f"{report.attempts} attempts ({report.retries} retries, "
        f"{report.failovers} failovers, "
        f"{report.backoff_seconds:.3f}s backoff), "
        f"{len(answer.rows)} answer rows"
    )
    if report.coalesced_hits or report.batched_hits:
        print(
            f"  shared: {report.coalesced_hits} coalesced hits, "
            f"{report.batched_hits} batched hits"
        )
    for name, delta in sorted(report.per_source.items()):
        print(f"  {name}: {delta.queries} queries, {delta.tuples} tuples")
    for row in answer.rows[: args.limit]:
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(row.items())))
    if len(answer.rows) > args.limit:
        print(f"  ... {len(answer.rows) - args.limit} more")

    print()
    print(render_timeline(tracer.finished_spans(), width=args.width))
    if args.sample is not None:
        print()
        print(tracer.format_stats())

    if loadgen is not None:
        from repro.serving.loadgen import LoadHarness

        threads, requests = loadgen
        harness = LoadHarness(mediator, [args.query], threads=threads)
        with use_tracer(tracer):
            report = harness.run(requests)
        print()
        print(report.format())

    if session is not None:
        session.stop()
        print()
        print(session.phases.format())
        sites = session.locks.sites()
        if sites:
            print()
            print(f"{'lock site':<18} {'acquires':>9} {'wait s':>10} "
                  f"{'timeouts':>9}")
            for site, summary in sites.items():
                print(f"{site:<18} {summary['acquires']:>9} "
                      f"{summary['wait_seconds']:>10.5f} "
                      f"{summary['timeouts']:>9g}")

    if mediator.slo is not None:
        print()
        print(mediator.slo.format())
    if args.slowlog:
        print()
        print(mediator.slow_queries.format())
    if args.events:
        print()
        print(mediator.events.format())

    if args.serve is not None:
        import urllib.error
        import urllib.request

        with TelemetryServer(mediator=mediator,
                             port=args.serve) as server:
            print(f"\ntelemetry server on {server.url}")
            for path in ("/metrics", "/health"):
                try:
                    with urllib.request.urlopen(server.url + path) as reply:
                        body = reply.read().decode("utf-8")
                        status = reply.status
                except urllib.error.HTTPError as reply:  # degraded = 503
                    body = reply.read().decode("utf-8")
                    status = reply.code
                print(f"\nGET {path} -> {status}")
                print(body.rstrip("\n"))

    if args.metrics:
        print()
        print(get_metrics().format())
    if args.jsonl:
        count = write_jsonl(tracer.finished_spans(), args.jsonl)
        print(f"\nwrote {count} spans to {args.jsonl}")
    mediator.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
