"""Trace one query end to end: ``python -m repro.trace "<SELECT ...>"``.

The one-command answer to "why is this query slow / why was this plan
picked": plans and executes the query against the library catalog with
a recording :class:`~repro.observability.Tracer` installed, then
prints

* the chosen plan and its estimated cost,
* the execution report (wall-clock, queries, tuples, retries,
  per-source traffic breakdown),
* the full span timeline -- mediator, planner phases (rewrite / mark /
  generate / cost, with sub-plan count Q and PR1-PR3 pruning-rule
  fire counts), per-source-call spans (attempts, retries, backoff,
  worker slot) and per-source service spans (queue wait, latency).

Options: ``--planner`` picks the scheme, ``--workers N`` executes on
the parallel executor (the timeline then shows worker threads),
``--metrics`` appends the metrics-registry snapshot, ``--jsonl PATH``
exports the spans for offline tooling.

The catalog is :func:`~repro.source.library.standard_catalog` plus the
Example 4.1 ``cars`` source, so the paper's running example works
verbatim::

    python -m repro.trace "SELECT model FROM cars WHERE make = 'BMW' and price < 40000"
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.mediator import Mediator
from repro.observability import (
    Tracer,
    get_metrics,
    render_timeline,
    use_tracer,
    write_jsonl,
)
from repro.source.library import cars, standard_catalog


def build_mediator(planner_name: str = "gencompact",
                   workers: int | None = None) -> Mediator:
    """The CLI's mediator: library catalog + Example 4.1's cars source."""
    from repro.__main__ import _make_planner

    mediator = Mediator(
        planner=_make_planner(planner_name), parallel_workers=workers
    )
    for source in standard_catalog().values():
        mediator.add_source(source)
    mediator.add_source(cars())
    return mediator


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Plan + execute one query with tracing on; print the "
                    "span timeline.",
    )
    parser.add_argument("query", help="a SELECT ... FROM ... WHERE ... query")
    parser.add_argument("--planner", default="gencompact",
                        help="gencompact|genmodular|cnf|dnf|disco|naive")
    parser.add_argument("--workers", type=int, default=None,
                        help="execute on a parallel executor with N workers")
    parser.add_argument("--limit", type=int, default=5,
                        help="max answer rows to print (default 5)")
    parser.add_argument("--width", type=int, default=32,
                        help="timeline bar width in characters")
    parser.add_argument("--metrics", action="store_true",
                        help="also print the metrics-registry snapshot")
    parser.add_argument("--jsonl", metavar="PATH",
                        help="export the spans to PATH as JSON lines")
    args = parser.parse_args(argv)

    try:
        mediator = build_mediator(args.planner, args.workers)
        tracer = Tracer()
        with use_tracer(tracer):
            answer = mediator.ask(args.query)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = answer.report
    print(answer.planning.describe())
    print(
        f"executed in {report.duration_seconds * 1000:.2f} ms: "
        f"{report.queries} source queries, "
        f"{report.tuples_transferred} tuples transferred, "
        f"{report.attempts} attempts ({report.retries} retries, "
        f"{report.failovers} failovers, "
        f"{report.backoff_seconds:.3f}s backoff), "
        f"{len(answer.rows)} answer rows"
    )
    for name, delta in sorted(report.per_source.items()):
        print(f"  {name}: {delta.queries} queries, {delta.tuples} tuples")
    for row in answer.rows[: args.limit]:
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(row.items())))
    if len(answer.rows) > args.limit:
        print(f"  ... {len(answer.rows) - args.limit} more")

    print()
    print(render_timeline(tracer.finished_spans(), width=args.width))

    if args.metrics:
        print()
        print(get_metrics().format())
    if args.jsonl:
        count = write_jsonl(tracer.finished_spans(), args.jsonl)
        print(f"\nwrote {count} spans to {args.jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
