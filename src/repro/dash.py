"""An ASCII telemetry dashboard: ``python -m repro.dash URL``.

One screen over a running :class:`~repro.observability.TelemetryServer`
-- health, SLO, admission, a continuous-profiling panel (top phases by
wall/CPU and the hottest lock-wait sites, when a profiler is
publishing), and every histogram with its streaming p50/p95/p99 plus a
bucket-distribution sparkline -- rendered from the server's
``/snapshot`` and ``/health`` endpoints with nothing but the stdlib.

One-shot by default; ``--watch SECONDS`` refreshes in place until
interrupted (``--iterations N`` bounds the loop, mostly for tests)::

    python -m repro.dash http://127.0.0.1:9464            # one shot
    python -m repro.dash http://127.0.0.1:9464 --watch 2  # live

``--cluster URL,URL,...`` federates instead of scraping one server: a
:class:`~repro.observability.federation.FederatedScraper` pulls every
instance's ``/snapshot`` + ``/health``, merges them (counters sum,
histograms merge bucket-wise, gauges keep per-instance identity) and
the same dashboard renders the cluster view, headed by a per-instance
status table.  An unreachable instance degrades the view, it does not
break it.

Start a server from the trace CLI (``python -m repro.trace ...
--serve PORT``) or in-process with ``TelemetryServer(mediator=...)``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any

from repro.observability.metrics import quantile_from_snapshot
from repro.observability.profiling import profile_families

_SPARK = "▁▂▃▄▅▆▇█"


def fetch_json(url: str, timeout: float = 5.0) -> tuple[int, Any]:
    """GET ``url`` and parse the JSON body (503 bodies included)."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as reply:
        # /health answers 503 while degraded -- that *is* the document.
        return reply.code, json.loads(reply.read().decode("utf-8"))


def sparkline(reading: dict[str, Any], width: int = 16) -> str:
    """The histogram's bucket distribution as a fixed-width sparkline."""
    buckets = reading.get("buckets") or []
    previous = 0
    per_bucket = []
    for _, cumulative in buckets:
        per_bucket.append(cumulative - previous)
        previous = cumulative
    per_bucket.append(reading.get("count", 0) - previous)  # +Inf bucket
    if len(per_bucket) > width:  # fold adjacent buckets down to width
        folded = [0] * width
        for index, value in enumerate(per_bucket):
            folded[index * width // len(per_bucket)] += value
        per_bucket = folded
    peak = max(per_bucket) if per_bucket else 0
    if peak == 0:
        return "·" * len(per_bucket)
    return "".join(
        _SPARK[min(len(_SPARK) - 1, value * len(_SPARK) // (peak + 1))]
        if value else "·"
        for value in per_bucket
    )


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.2f}"


def profiling_panel(snapshot: dict[str, dict[str, Any]],
                    top: int = 8) -> list[str]:
    """The continuous-profiler panel: top phases by wall/CPU and the
    hottest lock-wait sites, from ``profile.*`` registry families.

    Empty when no profiler has published (the off-by-default case) --
    the dashboard simply omits the panel.
    """
    phases: dict[str, dict[str, float]] = {}
    for name, reading in profile_families(snapshot, "profile.phase"):
        category, _, kind = name.rpartition(".")
        stat = phases.setdefault(
            category, {"spans": 0, "wall": 0.0, "cpu": 0.0})
        if kind == "wall_seconds":
            stat["spans"] = reading.get("count", 0)
            stat["wall"] = reading.get("sum", 0.0)
        elif kind == "cpu_seconds":
            stat["cpu"] = reading.get("value", 0.0)
    locks: dict[str, dict[str, float]] = {}
    for name, reading in profile_families(snapshot, "profile.lock"):
        site, _, kind = name.rpartition(".")
        stat = locks.setdefault(
            site, {"acquires": 0, "wait": 0.0, "max": 0.0, "timeouts": 0.0})
        if kind == "wait_seconds":
            stat["acquires"] = reading.get("count", 0)
            stat["wait"] = reading.get("sum", 0.0)
            stat["max"] = reading.get("max") or 0.0
        elif kind == "timeouts":
            stat["timeouts"] = reading.get("value", 0.0)

    lines: list[str] = []
    if phases:
        lines.append("")
        lines.append(f"  {'profile: phase':<24} {'spans':>8} "
                     f"{'wall s':>10} {'cpu s':>10} {'cpu/wall':>9}")
        ranked = sorted(phases.items(), key=lambda item: item[1]["wall"],
                        reverse=True)[:top]
        for category, stat in ranked:
            share = stat["cpu"] / stat["wall"] if stat["wall"] else 0.0
            lines.append(
                f"  {category:<24} {stat['spans']:>8g} "
                f"{stat['wall']:>10.4f} {stat['cpu']:>10.4f} {share:>9.2f}"
            )
    if locks:
        lines.append("")
        lines.append(f"  {'profile: lock site':<24} {'acquires':>8} "
                     f"{'wait s':>10} {'max ms':>10} {'timeouts':>9}")
        ranked = sorted(locks.items(), key=lambda item: item[1]["wait"],
                        reverse=True)[:top]
        for site, stat in ranked:
            lines.append(
                f"  {site:<24} {stat['acquires']:>8g} "
                f"{stat['wait']:>10.4f} {_ms(stat['max']):>10} "
                f"{stat['timeouts']:>9g}"
            )
    return lines


#: The request-sharing counters the serving panel owns (and the generic
#: counter section therefore omits).
SERVING_COUNTERS = ("executor.coalesced_hits", "executor.batched_hits")


def serving_panel(snapshot: dict[str, dict[str, Any]]) -> list[str]:
    """The request-sharing panel: the async engine's single-flight
    coalesced hits and window-batched hits (see
    :mod:`repro.plans.coalesce`), each a source call the cluster did
    *not* make.  Empty when neither counter has been touched."""
    values = {
        name: snapshot[name].get("value", 0)
        for name in SERVING_COUNTERS
        if name in snapshot and snapshot[name].get("type") == "counter"
    }
    if not values:
        return []
    coalesced = values.get("executor.coalesced_hits", 0)
    batched = values.get("executor.batched_hits", 0)
    return [
        "",
        "  serving: request sharing",
        f"  {'coalesced hits':<24} {coalesced:>12g}",
        f"  {'batched hits':<24} {batched:>12g}",
        f"  {'source calls avoided':<24} {coalesced + batched:>12g}",
    ]


def render(health: dict[str, Any], snapshot: dict[str, dict[str, Any]],
           source: str) -> str:
    """The one-screen dashboard for one scrape."""
    lines = [f"repro dash — {source} — status "
             f"{health.get('status', '?').upper()}"]
    if "catalog_version" in health:
        lines.append(
            f"  catalog v{health['catalog_version']} "
            f"({health.get('sources', '?')} sources)"
        )
    admission = health.get("admission")
    if admission:
        lines.append(
            f"  admission: {admission['in_flight']}/"
            f"{admission['max_in_flight']} in flight, "
            f"{admission['admitted']} admitted, {admission['shed']} shed "
            f"({admission['shed_rate'] * 100:.1f}%)"
        )
    slo = health.get("slo")
    if slo:
        lines.append(
            f"  slo: {slo['status']} — {slo['attainment'] * 100:.2f}% "
            f"within {_ms(slo['objective_seconds'])} ms "
            f"(target {slo['target'] * 100:g}%), "
            f"burn {slo['budget_burn']}x, "
            f"p99 {_ms(slo['p99_seconds'])} ms"
        )
    slow = health.get("slow_queries")
    if slow:
        lines.append(
            f"  slow queries: {slow['recorded']} recorded, "
            f"{slow['retained']} retained, {slow['evicted']} evicted"
        )
    lines.extend(profiling_panel(snapshot))
    lines.extend(serving_panel(snapshot))
    # profile.* families and the serving-panel counters render in
    # their own panels above, not in the generic instrument sections.
    generic = {n: r for n, r in snapshot.items()
               if not n.startswith("profile.")
               and n not in SERVING_COUNTERS}
    histograms = {n: r for n, r in generic.items()
                  if r["type"] == "histogram"}
    counters = {n: r for n, r in generic.items()
                if r["type"] == "counter"}
    gauges = {n: r for n, r in generic.items() if r["type"] == "gauge"}
    if histograms:
        lines.append("")
        lines.append(f"  {'histogram':<40} {'count':>7} {'mean ms':>9} "
                     f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9}  dist")
        for name in sorted(histograms):
            reading = histograms[name]
            lines.append(
                f"  {name:<40} {reading['count']:>7} "
                f"{_ms(reading['mean']):>9} "
                f"{_ms(quantile_from_snapshot(reading, 0.5)):>9} "
                f"{_ms(quantile_from_snapshot(reading, 0.95)):>9} "
                f"{_ms(quantile_from_snapshot(reading, 0.99)):>9}  "
                f"{sparkline(reading)}"
            )
    if counters:
        lines.append("")
        for name in sorted(counters):
            lines.append(f"  {name:<52} {counters[name]['value']:>12g}")
    if gauges:
        lines.append("")
        for name in sorted(gauges):
            reading = gauges[name]
            lines.append(
                f"  {name:<52} {reading['value']:>12g} "
                f"(max {reading['max']:g})"
            )
    return "\n".join(lines)


def scrape(base_url: str) -> str:
    """One dashboard frame from a telemetry server's endpoints."""
    _, health = fetch_json(base_url.rstrip("/") + "/health")
    _, snapshot = fetch_json(base_url.rstrip("/") + "/snapshot")
    return render(health, snapshot, base_url)


def render_cluster(view) -> str:
    """One dashboard frame for a federated
    :class:`~repro.observability.federation.ClusterView`: a
    per-instance status table on top, then the usual panels over the
    merged snapshot."""
    lines = [
        f"repro dash — cluster ({len(view.instances)} instances) — "
        f"status {view.status.upper()}"
    ]
    for status in view.instances:
        line = f"  {status.instance:<24} {status.status:<12} {status.url}"
        if status.error:
            line += f" — {status.error}"
        lines.append(line)
    body = render(view.health(), view.merged, "cluster")
    return "\n".join(lines + body.splitlines()[1:])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dash",
        description="Render a telemetry server's /snapshot + /health as "
                    "a one-screen ASCII dashboard.",
    )
    parser.add_argument("url", nargs="?", default=None,
                        help="telemetry server base URL, e.g. "
                             "http://127.0.0.1:9464")
    parser.add_argument("--cluster", default=None, metavar="URL,URL,...",
                        help="federate: scrape and merge several "
                             "telemetry servers into one cluster view")
    parser.add_argument("--watch", type=float, default=None,
                        metavar="SECONDS",
                        help="refresh every SECONDS until interrupted")
    parser.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="stop after N frames (with --watch; default "
                             "unbounded)")
    args = parser.parse_args(argv)
    if args.watch is not None and args.watch <= 0:
        raise SystemExit("error: --watch must be a positive interval")
    if (args.url is None) == (args.cluster is None):
        raise SystemExit(
            "error: pass either a telemetry server URL or --cluster"
        )
    scraper = None
    if args.cluster is not None:
        from repro.observability.federation import FederatedScraper

        targets = [t.strip() for t in args.cluster.split(",") if t.strip()]
        if not targets:
            raise SystemExit("error: --cluster needs at least one URL")
        scraper = FederatedScraper(targets)

    frames = 0
    while True:
        try:
            if scraper is not None:
                frame = render_cluster(scraper.scrape())
            else:
                frame = scrape(args.url)
        except (OSError, ValueError) as exc:
            target = args.cluster or args.url
            print(f"error: cannot scrape {target}: {exc}",
                  file=sys.stderr)
            return 1
        if args.watch is not None and frames > 0:
            print("\x1b[2J\x1b[H", end="")  # clear screen between frames
        print(frame)
        frames += 1
        if args.watch is None:
            return 0
        if args.iterations is not None and frames >= args.iterations:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


if __name__ == "__main__":
    sys.exit(main())
