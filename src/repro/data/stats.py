"""Statistics and result-size estimation for the cost model.

The paper's cost model (Eq. 1, Section 6.2) charges
``k1 + k2 * (result size of sq)`` per source query.  The optimizer needs
*estimated* result sizes before execution; this module supplies them
from per-attribute statistics under the textbook attribute-independence
assumption:

* selectivity(AND) = product of child selectivities,
* selectivity(OR)  = 1 - product of (1 - child selectivities).

Both combinators are monotone -- dropping a conjunct (or adding a
disjunct) never shrinks the estimate -- which is exactly the property
pruning rule PR1's soundness argument relies on ("impure plans ...
transfer at least as much data as the pure plan").
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import Condition
from repro.data.relation import Relation

#: Selectivity assumed for an equality against a never-seen value.
UNSEEN_EQ_SELECTIVITY = 0.0005
#: Selectivity floor so no condition is estimated as impossible.
MIN_SELECTIVITY = 1e-6


@dataclass
class _AttributeStats:
    """Value distribution of one attribute."""

    counts: Counter
    sorted_values: list
    n_rows: int

    @property
    def distinct(self) -> int:
        return len(self.counts)

    def eq_selectivity(self, value) -> float:
        if self.n_rows == 0:
            return 0.0
        count = self.counts.get(value)
        if count is None:
            return UNSEEN_EQ_SELECTIVITY
        return count / self.n_rows

    def range_selectivity(self, op: Op, value) -> float:
        """Fraction of rows with ``row.attr op value`` for ordered ops."""
        values = self.sorted_values
        n = len(values)
        if n == 0:
            return 0.0
        try:
            if op is Op.LT:
                k = bisect.bisect_left(values, value)
            elif op is Op.LE:
                k = bisect.bisect_right(values, value)
            elif op is Op.GT:
                k = n - bisect.bisect_right(values, value)
            else:  # GE
                k = n - bisect.bisect_left(values, value)
        except TypeError:
            # Cross-type comparison (e.g. number vs string column).
            return 0.0
        return k / self.n_rows

    def contains_selectivity(self, needle: str) -> float:
        if self.n_rows == 0:
            return 0.0
        needle = needle.lower()
        hits = sum(
            count
            for value, count in self.counts.items()
            if isinstance(value, str) and needle in value.lower()
        )
        return hits / self.n_rows


class TableStats:
    """Statistics over a relation, built once and queried by the planner.

    ``from_relation`` scans every row (the datasets are laptop-scale);
    a production system would sample, but exact statistics make the
    benchmark shapes reproducible.
    """

    def __init__(self, n_rows: int, per_attribute: dict[str, _AttributeStats]):
        self.n_rows = n_rows
        self._per_attribute = per_attribute
        # Planners evaluate the same (sub-)conditions many times while
        # comparing sub-plans; cache selectivities per condition tree.
        self._selectivity_cache: dict = {}

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        sample_size: int | None = None,
        seed: int = 0,
    ) -> "TableStats":
        """Build statistics by scanning the relation.

        With ``sample_size`` set, statistics are built from a uniform
        sample of that many rows -- what a production mediator does when
        full scans are unaffordable.  Selectivities are fractions of the
        sample (unbiased); only the table cardinality used by
        ``estimated_rows`` stays exact.
        """
        import random as _random

        rows: list = list(relation)
        n = len(relation)
        if sample_size is not None and 0 < sample_size < n:
            rng = _random.Random(seed)
            rows = rng.sample(rows, sample_size)
        n_sample = len(rows)
        per_attribute: dict[str, _AttributeStats] = {}
        for attr in relation.schema.attribute_names:
            counts: Counter = Counter()
            for row in rows:
                value = row.get(attr)
                if value is not None:
                    counts[value] += 1
            # The exact sorted multiset supports range-selectivity lookups.
            try:
                expanded = []
                for value in sorted(counts):
                    expanded.extend([value] * counts[value])
            except TypeError:
                # Mixed types in one column cannot be totally ordered;
                # range estimates on such columns fall back to 0.
                expanded = []
            per_attribute[attr] = _AttributeStats(counts, expanded, n_sample)
        return cls(n, per_attribute)

    # ------------------------------------------------------------------
    def atom_selectivity(self, atom: Atom) -> float:
        stats = self._per_attribute.get(atom.attribute)
        if stats is None:
            return UNSEEN_EQ_SELECTIVITY
        op = atom.op
        if op is Op.EQ:
            sel = stats.eq_selectivity(atom.value)
        elif op is Op.NE:
            sel = 1.0 - stats.eq_selectivity(atom.value)
        elif op is Op.IN:
            sel = min(1.0, sum(stats.eq_selectivity(v) for v in atom.value))
        elif op is Op.CONTAINS:
            sel = stats.contains_selectivity(atom.value)
        else:
            sel = stats.range_selectivity(op, atom.value)
        return max(MIN_SELECTIVITY, min(1.0, sel))

    def selectivity(self, condition: Condition) -> float:
        """Estimated selectivity of an arbitrary condition tree (cached)."""
        cached = self._selectivity_cache.get(condition)
        if cached is not None:
            return cached
        if condition.is_true:
            out = 1.0
        elif condition.is_leaf:
            out = self.atom_selectivity(condition.atom)
        else:
            child_sels = [self.selectivity(c) for c in condition.children]
            if condition.is_and:
                out = 1.0
                for sel in child_sels:
                    out *= sel
            else:
                out = 1.0
                for sel in child_sels:
                    out *= 1.0 - sel
                out = 1.0 - out
        self._selectivity_cache[condition] = out
        return out

    def estimated_rows(self, condition: Condition) -> float:
        """Estimated result size of σ_condition over the table."""
        return self.selectivity(condition) * self.n_rows
