"""A small in-memory relation with set semantics.

This is the substrate under both the simulated sources (a source
evaluates supported ``SP`` queries against its relation) and the
mediator's postprocessing (selection, projection, union, intersection
with duplicate elimination -- exactly the operator set of Section 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.conditions.tree import Condition
from repro.data.schema import Schema
from repro.errors import SchemaError

#: A tuple is represented as an attribute -> value mapping.
Row = dict


class Relation:
    """An immutable collection of rows conforming to a schema.

    Rows are stored as plain dicts; :meth:`project` and the set
    operations deduplicate via hashable row keys.  All operations return
    new relations.
    """

    def __init__(self, schema: Schema, rows: Iterable[Row], validate: bool = True):
        self.schema = schema
        self._rows: list[Row] = [dict(row) for row in rows]
        if validate:
            for row in self._rows:
                schema.validate_row(row)

    # -- basic accessors -------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    @property
    def rows(self) -> list[Row]:
        """A defensive copy of the rows."""
        return [dict(r) for r in self._rows]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Relation({self.schema.name}, {len(self)} rows)"

    # -- relational operators --------------------------------------------
    def select(self, condition: Condition) -> "Relation":
        """σ_condition: rows satisfying the condition."""
        return Relation(
            self.schema,
            (row for row in self._rows if condition.evaluate(row)),
            validate=False,
        )

    def project(self, attributes: Iterable[str]) -> "Relation":
        """π_attributes with duplicate elimination (set semantics)."""
        attrs = self.schema.validate_attributes(attributes)
        ordered = [a for a in self.schema.attribute_names if a in attrs]
        sub_schema = Schema(
            self.schema.name,
            tuple(a for a in self.schema.attrs if a.name in attrs),
            self.schema.key if self.schema.key in attrs else None,
        )
        seen: set = set()
        out: list[Row] = []
        for row in self._rows:
            projected = {a: row[a] for a in ordered}
            key = tuple(projected[a] for a in ordered)
            if key not in seen:
                seen.add(key)
                out.append(projected)
        return Relation(sub_schema, out, validate=False)

    def sp(self, condition: Condition, attributes: Iterable[str]) -> "Relation":
        """``SP(C, A, R)`` = π_A(σ_C(R)) -- the paper's select-project query."""
        return self.select(condition).project(attributes)

    # -- set operations (require identical attribute sets) ----------------
    def _check_compatible(self, other: "Relation") -> tuple[str, ...]:
        mine = self.schema.attribute_names
        theirs = other.schema.attribute_names
        if set(mine) != set(theirs):
            raise SchemaError(
                f"set operation over different attribute sets: {mine} vs {theirs}"
            )
        return mine

    def _row_key(self, row: Row, order: Sequence[str]):
        return tuple(row[a] for a in order)

    def union(self, other: "Relation") -> "Relation":
        """Set union with duplicate elimination."""
        order = self._check_compatible(other)
        seen: set = set()
        out: list[Row] = []
        for row in list(self._rows) + [
            {a: r[a] for a in order} for r in other._rows
        ]:
            key = self._row_key(row, order)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return Relation(self.schema, out, validate=False)

    def intersect(self, other: "Relation") -> "Relation":
        """Set intersection."""
        order = self._check_compatible(other)
        theirs = {self._row_key({a: r[a] for a in order}, order) for r in other._rows}
        seen: set = set()
        out: list[Row] = []
        for row in self._rows:
            key = self._row_key(row, order)
            if key in theirs and key not in seen:
                seen.add(key)
                out.append(row)
        return Relation(self.schema, out, validate=False)

    def distinct(self) -> "Relation":
        """Duplicate elimination over all attributes."""
        order = self.schema.attribute_names
        seen: set = set()
        out: list[Row] = []
        for row in self._rows:
            key = self._row_key(row, order)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return Relation(self.schema, out, validate=False)

    # -- conveniences ------------------------------------------------------
    def as_row_set(self) -> frozenset:
        """Rows as a hashable set of (attr, value) tuples, for comparisons."""
        order = self.schema.attribute_names
        return frozenset(tuple(row[a] for a in order) for row in self._rows)

    def sample(self, k: int, rng) -> list[Row]:
        """``k`` rows sampled without replacement via the given RNG."""
        if k >= len(self._rows):
            return self.rows
        return [dict(r) for r in rng.sample(self._rows, k)]
