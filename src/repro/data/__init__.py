"""Relational substrate: schemas, relations, statistics, synthetic data."""

from repro.data.generate import (
    ACCOUNTS_SCHEMA,
    BOOKS_SCHEMA,
    CARS_SCHEMA,
    FLIGHTS_SCHEMA,
    GENERATORS,
    generate_accounts,
    generate_books,
    generate_cars,
    generate_flights,
)
from repro.data.relation import Relation, Row
from repro.data.schema import AttrType, Attribute, Schema
from repro.data.stats import TableStats

__all__ = [
    "Schema",
    "Attribute",
    "AttrType",
    "Relation",
    "Row",
    "TableStats",
    "generate_books",
    "generate_cars",
    "generate_accounts",
    "generate_flights",
    "GENERATORS",
    "BOOKS_SCHEMA",
    "CARS_SCHEMA",
    "ACCOUNTS_SCHEMA",
    "FLIGHTS_SCHEMA",
]
