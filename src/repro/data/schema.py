"""Relation schemas.

The paper models each Internet source as a relation (Section 3,
footnote 1).  A :class:`Schema` names the attributes, their types and an
optional key attribute.  The key matters to the mediator's set
operations: intersecting projections that include a key is exact,
whereas intersecting key-less projections can over-approximate (the
"intersection anomaly" discussed in DESIGN.md).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchemaError, UnknownAttributeError


class AttrType(enum.Enum):
    """Attribute types for synthetic data and statistics."""

    STRING = "string"
    INT = "int"
    FLOAT = "float"
    BOOL = "bool"

    def python_types(self) -> tuple[type, ...]:
        if self is AttrType.STRING:
            return (str,)
        if self is AttrType.INT:
            return (int,)
        if self is AttrType.FLOAT:
            return (float, int)
        return (bool,)


@dataclass(frozen=True)
class Attribute:
    """A named, typed attribute."""

    name: str
    type: AttrType = AttrType.STRING

    def admits(self, value) -> bool:
        if value is None:
            return True
        if self.type is AttrType.BOOL:
            return isinstance(value, bool)
        if self.type is AttrType.INT and isinstance(value, bool):
            return False
        return isinstance(value, self.type.python_types())


@dataclass(frozen=True)
class Schema:
    """An ordered set of attributes with an optional key.

    ``key`` names a single attribute whose values are unique per tuple
    (synthetic generators always populate it uniquely).
    """

    name: str
    attrs: tuple[Attribute, ...]
    key: str | None = None

    def __post_init__(self) -> None:
        names = [a.name for a in self.attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {self.name!r}")
        if not names:
            raise SchemaError(f"schema {self.name!r} has no attributes")
        if self.key is not None and self.key not in names:
            raise SchemaError(
                f"key {self.key!r} is not an attribute of schema {self.name!r}"
            )

    @staticmethod
    def of(name: str, spec: Sequence[tuple[str, AttrType] | str],
           key: str | None = None) -> "Schema":
        """Build a schema from ``(name, type)`` pairs or bare string names."""
        attrs = []
        for item in spec:
            if isinstance(item, str):
                attrs.append(Attribute(item))
            else:
                attrs.append(Attribute(item[0], item[1]))
        return Schema(name, tuple(attrs), key)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attrs)

    def __contains__(self, attribute: str) -> bool:
        return any(a.name == attribute for a in self.attrs)

    def attribute(self, name: str) -> Attribute:
        for attr in self.attrs:
            if attr.name == name:
                return attr
        raise UnknownAttributeError(name, self.name)

    def validate_attributes(self, attributes: Iterable[str]) -> frozenset[str]:
        """Check every name is an attribute; return them as a frozenset."""
        out = frozenset(attributes)
        for name in out:
            if name not in self:
                raise UnknownAttributeError(name, self.name)
        return out

    def validate_row(self, row: dict) -> None:
        """Raise :class:`SchemaError` if the row does not fit the schema."""
        for attr in self.attrs:
            if attr.name not in row:
                raise SchemaError(
                    f"row is missing attribute {attr.name!r} of schema {self.name!r}"
                )
            if not attr.admits(row[attr.name]):
                raise SchemaError(
                    f"value {row[attr.name]!r} does not fit attribute "
                    f"{attr.name!r}:{attr.type.value} of schema {self.name!r}"
                )
        extra = set(row) - set(self.attribute_names)
        if extra:
            raise SchemaError(
                f"row has attributes {sorted(extra)} unknown to schema {self.name!r}"
            )
