"""Seeded synthetic datasets standing in for the paper's live Internet sources.

The paper evaluates against real 1999-era web sites (BarnesAndNoble,
Autobytel, bank account lookups).  Offline, we generate relations whose
value distributions make the motivating queries behave the way the
paper describes -- e.g. the bookstore holds plenty of books matching
``title contains 'dreams'`` alone (the data Garlic's CNF plan would drag
over the network) but only a handful matching author AND title.

Every generator is a pure function of ``(n, seed)``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema

# ----------------------------------------------------------------------
# Value pools
# ----------------------------------------------------------------------

AUTHORS = [
    "Sigmund Freud", "Carl Jung", "William James", "Alfred Adler",
    "Anna Freud", "Karen Horney", "Erik Erikson", "B. F. Skinner",
    "Jean Piaget", "Abraham Maslow", "Viktor Frankl", "Erich Fromm",
    "John Dewey", "Kurt Lewin", "Gordon Allport", "Raymond Cattell",
    "Mary Ainsworth", "Lev Vygotsky", "Albert Bandura", "Carl Rogers",
    "Hermann Ebbinghaus", "Wilhelm Wundt", "Edward Thorndike",
    "Stanley Milgram", "Leon Festinger", "Harry Harlow", "Hans Eysenck",
    "Donald Hebb", "George Miller", "Ulric Neisser", "Noam Chomsky",
    "Roger Sperry",
]

TITLE_TOPICS = [
    "Dreams", "Memory", "Childhood", "Anxiety", "Symbols", "Psyche",
    "Consciousness", "Instinct", "Therapy", "Behavior", "Perception",
    "Personality", "Emotion", "Language", "Learning", "Motivation",
    "Attention", "Attachment", "Cognition", "Identity", "Intelligence",
    "Habit", "Will", "Imagination", "Reasoning", "Morality",
]

TITLE_FORMS = [
    "The Interpretation of {}", "On {}", "Essays on {}", "{} and Society",
    "A Study of {}", "The Psychology of {}", "{} Reconsidered",
    "Beyond {}", "Understanding {}", "{} in Everyday Life",
    "Lectures on {}", "The Origins of {}", "{} and Its Discontents",
    "Notes Toward a Theory of {}", "The Structure of {}",
    "{}: A Critical History", "Foundations of {}", "The Problem of {}",
]

SUBJECTS = [
    "psychology", "psychoanalysis", "philosophy", "self-help",
    "neuroscience", "history of science", "biography", "education",
]

BINDINGS = ["hardcover", "paperback", "audio"]

CAR_MAKES = {
    "Toyota": ["Camry", "Corolla", "Avalon", "Celica"],
    "BMW": ["318i", "328i", "528i", "740il"],
    "Honda": ["Accord", "Civic", "Prelude"],
    "Ford": ["Taurus", "Contour", "Escort"],
    "Mercedes": ["C230", "E320", "S420"],
    "Volkswagen": ["Jetta", "Passat", "Golf"],
}

CAR_STYLES = ["sedan", "coupe", "wagon", "convertible", "suv"]
CAR_SIZES = ["compact", "midsize", "fullsize"]
CAR_COLORS = ["red", "black", "white", "blue", "silver", "green"]

BRANCHES = ["downtown", "airport", "university", "harbor", "suburb"]
ACCOUNT_TYPES = ["checking", "savings", "moneymarket"]

AIRLINES = ["UA", "AA", "DL", "NW", "TW", "US"]
CITIES = ["SFO", "LAX", "JFK", "ORD", "SEA", "BOS", "DEN", "IAH", "MIA", "ATL"]


def _zipf_choice(rng: random.Random, items: list, skew: float = 1.2):
    """Pick an item with a Zipf-like skew (earlier items more likely)."""
    weights = [1.0 / (rank + 1) ** skew for rank in range(len(items))]
    return rng.choices(items, weights=weights, k=1)[0]


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------

BOOKS_SCHEMA = Schema.of(
    "books",
    [
        ("id", AttrType.INT),
        ("title", AttrType.STRING),
        ("author", AttrType.STRING),
        ("subject", AttrType.STRING),
        ("binding", AttrType.STRING),
        ("price", AttrType.FLOAT),
        ("year", AttrType.INT),
    ],
    key="id",
)

CARS_SCHEMA = Schema.of(
    "cars",
    [
        ("id", AttrType.INT),
        ("make", AttrType.STRING),
        ("model", AttrType.STRING),
        ("style", AttrType.STRING),
        ("size", AttrType.STRING),
        ("color", AttrType.STRING),
        ("price", AttrType.INT),
        ("year", AttrType.INT),
        ("mileage", AttrType.INT),
    ],
    key="id",
)

ACCOUNTS_SCHEMA = Schema.of(
    "accounts",
    [
        ("account_no", AttrType.INT),
        ("owner", AttrType.STRING),
        ("branch", AttrType.STRING),
        ("type", AttrType.STRING),
        ("balance", AttrType.FLOAT),
        ("pin", AttrType.INT),
    ],
    key="account_no",
)

FLIGHTS_SCHEMA = Schema.of(
    "flights",
    [
        ("id", AttrType.INT),
        ("origin", AttrType.STRING),
        ("destination", AttrType.STRING),
        ("airline", AttrType.STRING),
        ("price", AttrType.INT),
        ("stops", AttrType.INT),
        ("day", AttrType.INT),
    ],
    key="id",
)


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def generate_books(n: int = 20000, seed: int = 1999) -> Relation:
    """A bookstore relation echoing Example 1.1's BarnesAndNoble."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        topic = _zipf_choice(rng, TITLE_TOPICS, skew=0.4)
        title = rng.choice(TITLE_FORMS).format(topic)
        rows.append(
            {
                "id": i,
                "title": title,
                "author": _zipf_choice(rng, AUTHORS, skew=0.3),
                "subject": _zipf_choice(rng, SUBJECTS),
                "binding": rng.choice(BINDINGS),
                "price": round(rng.uniform(4.0, 120.0), 2),
                "year": rng.randint(1890, 1999),
            }
        )
    return Relation(BOOKS_SCHEMA, rows, validate=False)


def generate_cars(n: int = 12000, seed: int = 1999) -> Relation:
    """A cars-for-sale relation echoing Example 1.2's Autobytel."""
    rng = random.Random(seed)
    rows = []
    makes = list(CAR_MAKES)
    for i in range(n):
        make = _zipf_choice(rng, makes)
        base_price = {"Toyota": 16000, "Honda": 15000, "Ford": 14000,
                      "Volkswagen": 17000, "BMW": 38000, "Mercedes": 45000}[make]
        rows.append(
            {
                "id": i,
                "make": make,
                "model": rng.choice(CAR_MAKES[make]),
                "style": _zipf_choice(rng, CAR_STYLES, skew=0.8),
                "size": rng.choice(CAR_SIZES),
                "color": _zipf_choice(rng, CAR_COLORS, skew=0.6),
                "price": int(base_price * rng.uniform(0.5, 1.6)),
                "year": rng.randint(1990, 1999),
                "mileage": rng.randint(0, 150000),
            }
        )
    return Relation(CARS_SCHEMA, rows, validate=False)


def generate_accounts(n: int = 5000, seed: int = 1999) -> Relation:
    """A bank relation for the PIN-gated capability example (Section 4)."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        rows.append(
            {
                "account_no": 100000 + i,
                "owner": f"customer-{rng.randint(1, n // 2)}",
                "branch": rng.choice(BRANCHES),
                "type": _zipf_choice(rng, ACCOUNT_TYPES, skew=0.7),
                "balance": round(rng.lognormvariate(8.0, 1.2), 2),
                "pin": rng.randint(1000, 9999),
            }
        )
    return Relation(ACCOUNTS_SCHEMA, rows, validate=False)


def generate_flights(n: int = 15000, seed: int = 1999) -> Relation:
    """A flight-listings relation for the multi-source examples."""
    rng = random.Random(seed)
    rows = []
    for i in range(n):
        origin = rng.choice(CITIES)
        destination = rng.choice([c for c in CITIES if c != origin])
        rows.append(
            {
                "id": i,
                "origin": origin,
                "destination": destination,
                "airline": _zipf_choice(rng, AIRLINES, skew=0.5),
                "price": int(rng.uniform(80, 1400)),
                "stops": rng.choices([0, 1, 2], weights=[5, 3, 1], k=1)[0],
                "day": rng.randint(1, 365),
            }
        )
    return Relation(FLIGHTS_SCHEMA, rows, validate=False)


#: Registry used by the source library and the examples.
GENERATORS: dict[str, Callable[..., Relation]] = {
    "books": generate_books,
    "cars": generate_cars,
    "accounts": generate_accounts,
    "flights": generate_flights,
}
