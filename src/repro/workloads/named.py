"""Named, seeded, replayable workloads: the scenario subsystem.

The ROADMAP's scenario-diversity item asks for workloads beyond the
friendly static-catalog mixes: sources that join/leave/change mid-run,
adversarial grammars, skewed traffic with load curves, and a
minimal-answer mode.  Each ships here as a **named workload** -- a
registered class with

* one **run-level seed** from which *every* random choice in the
  scenario is derived (:func:`derive_seed` gives each component --
  source data, fault injectors, latency models, traffic streams -- its
  own stable sub-seed), so a replay with the same seed is bit-for-bit
  identical;
* :meth:`Workload.run` producing a :class:`WorkloadReport` whose
  ``summary`` is **deterministic** (replay twice, diff nothing) while
  wall-clock measurements live in ``details`` (explicitly excluded
  from the replay contract);
* :meth:`Workload.battery` -- the workload's correctness battery
  (parity, oracle, accounting), which raises ``AssertionError`` on any
  violation and returns its accounting for reports.

``python -m repro.workloads <name> --seed N`` runs one from the shell;
:func:`get_workload` is the library entry point.
"""

from __future__ import annotations

import json
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field


def derive_seed(seed: int, label: str) -> int:
    """A stable sub-seed for one component of a seeded run.

    CRC32 of the label, chained from the run seed: deterministic across
    processes and platforms (unlike ``hash``), cheap, and distinct
    labels give independent-looking streams.  This is how one run-level
    seed fans out to every source table, fault injector, latency model
    and traffic stream a scenario builds -- the property the replay
    batteries rely on.
    """
    return zlib.crc32(label.encode("utf-8"), seed & 0xFFFFFFFF) & 0x7FFFFFFF


@dataclass
class WorkloadReport:
    """What one workload run produced.

    ``summary`` is the deterministic part: a replay with the same seed
    and knobs must reproduce it exactly (the registry test diffs two
    runs).  ``details`` holds everything timing-dependent -- latencies,
    shed counts under real concurrency, compile wall-times.
    """

    workload: str
    seed: int
    summary: dict
    details: dict = field(default_factory=dict)

    def format(self) -> str:
        lines = [f"workload {self.workload} (seed={self.seed})"]
        for key in sorted(self.summary):
            lines.append(f"  {key} = {self.summary[key]}")
        for key in sorted(self.details):
            lines.append(f"  [{key}] = {self.details[key]}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {"workload": self.workload, "seed": self.seed,
             "summary": self.summary, "details": self.details},
            indent=2, sort_keys=True, default=str,
        )


class Workload(ABC):
    """A named scenario: seeded run + correctness battery."""

    #: Registry name (set by subclasses; ``@register`` keys on it).
    name: str = ""
    #: One-line description shown by ``--list``.
    description: str = ""

    def __init__(self, seed: int = 1999):
        self.seed = seed

    def _report(self, summary: dict, details: dict | None = None
                ) -> WorkloadReport:
        return WorkloadReport(self.name, self.seed, summary, details or {})

    @abstractmethod
    def run(self) -> WorkloadReport:
        """Replay the scenario once and report (summary deterministic)."""

    @abstractmethod
    def battery(self) -> dict:
        """Run the correctness battery; raises AssertionError on any
        violation, returns its accounting (counts checked, etc.)."""


#: The registry: workload name -> class.
WORKLOADS: dict[str, type[Workload]] = {}


def register(cls: type[Workload]) -> type[Workload]:
    """Class decorator: add a workload to the registry by its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no workload name")
    if cls.name in WORKLOADS:
        raise ValueError(f"workload {cls.name!r} registered twice")
    WORKLOADS[cls.name] = cls
    return cls


def available_workloads() -> list[str]:
    _load_builtin()
    return sorted(WORKLOADS)


def get_workload(name: str, seed: int = 1999, **knobs) -> Workload:
    """Instantiate a registered workload by name."""
    _load_builtin()
    try:
        cls = WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS)) or "<none>"
        raise KeyError(
            f"unknown workload {name!r}; available: {known}"
        ) from None
    return cls(seed=seed, **knobs)


def _load_builtin() -> None:
    """Import the modules whose ``@register`` calls fill the registry."""
    from repro.workloads import (  # noqa: F401
        adversarial,
        federation,
        minimal_answers,
        replay,
    )
