"""Zipf traffic replayer: skewed popularity under a diurnal load curve.

Real query traffic is not uniform in either dimension the friendly
benchmarks assume: *which* query arrives follows a heavy-tailed
popularity law (a few shapes dominate -- exactly the regime plan
caching and templates exist for), and *when* it arrives follows a
daily curve (peaks stress admission control, troughs let it drain).
This workload replays both:

* :func:`zipf_stream` draws a seeded query stream where the query
  ranked ``r`` is picked with probability proportional to
  ``1 / r**s`` -- the classic Zipf law;
* :func:`diurnal_arrivals` builds a **deterministic** arrival schedule
  (offsets in seconds) whose instantaneous rate follows a sinusoidal
  day: trough at the start and end, peak in the middle, compressed
  into a few seconds of wall clock.  It inverts the cumulative rate
  function by bisection rather than sampling a Poisson process, so the
  schedule is a pure function of its arguments -- replays are
  identical, and the :class:`~repro.serving.loadgen.LoadHarness`
  ``arrivals`` parameter consumes it directly.

The deterministic replay summary comes from a single-threaded pass
(hit rates, popularity concentration, per-outcome accounting); the
battery then runs the same stream through the load harness -- with and
without an admission gate -- and reconciles ``completed + shed +
errors == requests`` *exactly* against the admission controller's own
``admitted``/``shed`` counts and the stream's precomputed infeasible
picks.
"""

from __future__ import annotations

import math
import random
from collections import Counter

from repro.errors import InfeasiblePlanError, ReproError
from repro.mediator import Mediator
from repro.query import TargetQuery
from repro.serving.loadgen import LoadHarness
from repro.workloads.named import (
    Workload,
    WorkloadReport,
    derive_seed,
    register,
)
from repro.workloads.synthetic import WorldConfig, make_queries, make_source


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalized Zipf(``s``) popularity over ranks ``1..n``."""
    if n < 1:
        raise ValueError("need at least one rank")
    raw = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_stream(
    queries: list[TargetQuery],
    n_requests: int,
    s: float,
    seed: int,
) -> list[TargetQuery]:
    """A seeded request stream over ``queries`` with Zipf(``s``) skew.

    Rank 1 (the hottest query) is ``queries[0]``; callers wanting a
    different hot set should shuffle the pool first (seeded).
    """
    weights = zipf_weights(len(queries), s)
    rng = random.Random(seed)
    return rng.choices(queries, weights=weights, k=n_requests)


def diurnal_arrivals(
    n: int,
    duration: float,
    depth: float = 0.9,
    cycles: int = 1,
) -> list[float]:
    """``n`` deterministic arrival offsets over ``duration`` seconds.

    The instantaneous rate follows ``lam(t) = 1 - depth * cos(omega t)``
    (trough at ``t = 0``, peak mid-cycle), scaled so exactly ``n``
    arrivals land in ``duration``.  Arrival ``i`` is placed where the
    cumulative rate reaches ``(i + 1) / (n + 1)`` of its total --
    inverse-transform of the *expected* arrival process, found by
    bisection, so the schedule is a pure function of its arguments
    (replayable) and strictly increasing (the harness requirement).
    """
    if n < 1:
        raise ValueError("need at least one arrival")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= depth < 1.0:
        raise ValueError("depth must be in [0, 1)")
    if cycles < 1:
        raise ValueError("cycles must be at least 1")
    omega = 2.0 * math.pi * cycles / duration

    def cumulative(t: float) -> float:
        # integral of lam from 0 to t; cumulative(duration) == duration.
        return t - (depth / omega) * math.sin(omega * t)

    offsets: list[float] = []
    lo = 0.0
    for index in range(n):
        target = duration * (index + 1) / (n + 1)
        hi = duration
        t_lo = lo
        for _ in range(60):  # bisection to ~double precision
            mid = (t_lo + hi) / 2.0
            if cumulative(mid) < target:
                t_lo = mid
            else:
                hi = mid
        offsets.append(hi)
        lo = hi  # monotone targets: resume from the last arrival
    return offsets


@register
class ZipfTrafficWorkload(Workload):
    """Skewed traffic + diurnal curve through the serving layer."""

    name = "zipf_traffic"
    description = (
        "Zipf-skewed query stream on a diurnal arrival curve; exact "
        "completed+shed+errors accounting through the load harness"
    )

    def __init__(
        self,
        seed: int = 1999,
        pool_size: int = 24,
        n_requests: int = 400,
        zipf_s: float = 1.2,
        duration: float = 1.5,
        cycles: int = 2,
        depth: float = 0.9,
        threads: int = 8,
        n_rows: int = 200,
        plan_cache_entries: int = 256,
    ):
        super().__init__(seed)
        self.pool_size = pool_size
        self.n_requests = n_requests
        self.zipf_s = zipf_s
        self.duration = duration
        self.cycles = cycles
        self.depth = depth
        self.threads = threads
        self.n_rows = n_rows
        self.plan_cache_entries = plan_cache_entries

    # ------------------------------------------------------------------
    def _mediator(self, max_in_flight: int | None = None) -> Mediator:
        return Mediator(plan_cache_entries=self.plan_cache_entries,
                        max_in_flight=max_in_flight,
                        admission_timeout=0.005)

    def _world(self) -> tuple[Mediator, list[TargetQuery]]:
        config = WorldConfig(n_rows=self.n_rows,
                             seed=derive_seed(self.seed, "world"))
        source = make_source(config)
        mediator = self._mediator()
        mediator.add_source(source)
        pool = make_queries(config, source, self.pool_size, n_atoms=2,
                            seed=derive_seed(self.seed, "pool"))
        rng = random.Random(derive_seed(self.seed, "ranks"))
        rng.shuffle(pool)  # seeded hot-set assignment
        return mediator, pool

    def _stream(self, pool: list[TargetQuery]) -> list[TargetQuery]:
        return zipf_stream(pool, self.n_requests, self.zipf_s,
                           derive_seed(self.seed, "stream"))

    def run(self) -> WorkloadReport:
        mediator, pool = self._world()
        stream = self._stream(pool)
        arrivals = diurnal_arrivals(self.n_requests, self.duration,
                                    self.depth, self.cycles)
        outcomes: Counter[str] = Counter()
        for query in stream:
            try:
                mediator.ask(query)
            except InfeasiblePlanError:
                outcomes["infeasible"] += 1
            except ReproError:  # pragma: no cover - no faults configured
                outcomes["error"] += 1
            else:
                outcomes["ok"] += 1
        popularity = Counter(id(q) for q in stream)
        top_share = popularity.most_common(1)[0][1] / len(stream)
        cache = mediator.plan_cache.stats
        total = cache.hits + cache.misses
        # Median inter-arrival gaps in the first and the peak tenth of
        # the schedule -- the diurnal signature, deterministic.
        tenth = max(2, self.n_requests // 10)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        trough_gap = sorted(gaps[:tenth])[tenth // 2]
        mid = len(gaps) // (2 * self.cycles)  # first peak's center
        peak_gap = sorted(gaps[mid:mid + tenth])[tenth // 2]
        summary = {
            "requests": self.n_requests,
            "pool_size": self.pool_size,
            "ok": outcomes["ok"],
            "infeasible": outcomes["infeasible"],
            "errors": outcomes["error"],
            "distinct_queries": len(popularity),
            "top_query_share": round(top_share, 4),
            "plan_cache_hits": cache.hits,
            "plan_cache_misses": cache.misses,
            "hit_rate": round(cache.hits / total, 4) if total else 0.0,
            "template_hits": mediator.plan_templates.hits,
            "schedule_span": round(arrivals[-1], 6),
            "trough_gap_us": round(trough_gap * 1e6, 1),
            "peak_gap_us": round(peak_gap * 1e6, 1),
        }
        return self._report(summary)

    # ------------------------------------------------------------------
    def battery(self, max_in_flight: int = 2) -> dict:
        """Exact accounting through the harness, twice over.

        Ungated: every request either completes or raises
        ``InfeasiblePlanError``, and the stream's infeasible picks are
        precomputed -- so ``completed`` and ``errors`` are *predicted*,
        not just summed.  Gated: an admission gate small enough to shed
        under the peak; sheds are timing-dependent, but the identity
        ``completed + shed + errors == requests`` must hold and the
        report's ``shed`` must equal the admission controller's own
        count exactly.
        """
        mediator, pool = self._world()
        stream = self._stream(pool)
        # Predict each pick's outcome from a deterministic probe pass
        # through ask() itself -- probing with plan() would mispredict
        # provably unsatisfiable queries, which ask() short-circuits to
        # an empty answer instead of raising InfeasiblePlanError.
        infeasible_pool = set()
        for query in pool:
            try:
                mediator.ask(query)
            except InfeasiblePlanError:
                infeasible_pool.add(id(query))
        predicted_errors = sum(
            1 for query in stream if id(query) in infeasible_pool)
        arrivals = diurnal_arrivals(self.n_requests, self.duration,
                                    self.depth, self.cycles)

        ungated = LoadHarness(
            mediator, stream, threads=self.threads, mode="open",
            arrivals=arrivals,
        ).run(self.n_requests)
        assert ungated.shed == 0, "no gate, yet requests were shed"
        assert ungated.errors == predicted_errors, (
            f"{ungated.errors} errors vs {predicted_errors} predicted "
            "infeasible picks"
        )
        assert ungated.completed == self.n_requests - predicted_errors
        assert ungated.completed + ungated.shed + ungated.errors \
            == self.n_requests

        gated = self._mediator(max_in_flight=max_in_flight)
        gated.add_source(make_source(WorldConfig(
            n_rows=self.n_rows, seed=derive_seed(self.seed, "world"))))
        report = LoadHarness(
            gated, stream, threads=self.threads, mode="open",
            arrivals=arrivals,
        ).run(self.n_requests)
        assert report.completed + report.shed + report.errors \
            == self.n_requests, "a request escaped the three buckets"
        assert report.shed == gated.admission.shed, (
            f"harness counted {report.shed} sheds, the gate "
            f"{gated.admission.shed}"
        )
        assert gated.admission.admitted + gated.admission.shed \
            == self.n_requests
        return {
            "requests": self.n_requests,
            "predicted_errors": predicted_errors,
            "ungated_completed": ungated.completed,
            "gated_completed": report.completed,
            "gated_shed": report.shed,
            "gated_errors": report.errors,
            "accounting_exact": True,
        }
