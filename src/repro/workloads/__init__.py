"""Workloads: synthetic worlds, the paper's fixed scenarios, and the
named seeded scenario subsystem (``repro.workloads.named``)."""

from repro.workloads.named import (
    Workload,
    WorkloadReport,
    available_workloads,
    derive_seed,
    get_workload,
)
from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    bank_scenario,
    bookstore_scenario,
    car_scenario,
)
from repro.workloads.synthetic import (
    WorldConfig,
    make_description,
    make_queries,
    make_schema,
    make_source,
    make_table,
    random_atom,
    random_condition,
    template_space,
)

__all__ = [
    "Workload",
    "WorkloadReport",
    "available_workloads",
    "derive_seed",
    "get_workload",
    "Scenario",
    "all_scenarios",
    "bookstore_scenario",
    "car_scenario",
    "bank_scenario",
    "WorldConfig",
    "make_schema",
    "make_table",
    "make_description",
    "make_source",
    "make_queries",
    "random_atom",
    "random_condition",
    "template_space",
]
