"""Workloads: random synthetic worlds and the paper's fixed scenarios."""

from repro.workloads.scenarios import (
    Scenario,
    all_scenarios,
    bank_scenario,
    bookstore_scenario,
    car_scenario,
)
from repro.workloads.synthetic import (
    WorldConfig,
    make_description,
    make_queries,
    make_schema,
    make_source,
    make_table,
    random_atom,
    random_condition,
    template_space,
)

__all__ = [
    "Scenario",
    "all_scenarios",
    "bookstore_scenario",
    "car_scenario",
    "bank_scenario",
    "WorldConfig",
    "make_schema",
    "make_table",
    "make_description",
    "make_source",
    "make_queries",
    "random_atom",
    "random_condition",
    "template_space",
]
