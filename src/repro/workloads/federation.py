"""Dynamic federation: sources join, leave and change capabilities mid-run.

The paper's sources are *autonomous* (Section 3) -- the mediator does
not control when a site appears, disappears, or redesigns its form.
Three layers of derived state must invalidate coherently when that
happens: the compiled token-trie recognizers, the exact canonical plan
cache, and the skeleton-keyed plan templates.  This module is the
scenario that proves they do.

:class:`DriftingCatalog` is a seeded driver around a
:class:`~repro.mediator.Mediator`: every drift event either registers a
fresh synthetic source, removes a live one (eagerly, via
:meth:`Mediator.remove_source`), or mutates a live one's SSDL grammar
in place (:meth:`Mediator.mutate_source`).  All randomness -- world
data, grammars, query pools, fault injectors, the drift schedule itself
-- derives from one run-level seed, so a drift run replays bit-for-bit.

:func:`oracle_ask` is the correctness oracle: it snapshots the catalog
version at admission, asks, and classifies the outcome.  **Post-drift
semantics** means the served plan's catalog version matches or
postdates the admission version (stale = served from an older catalog)
and a source-side capability rejection can only ever coincide with a
concurrent drift -- with a quiescent catalog, a plan the mediator just
validated must execute, so an enforcement rejection without a version
move is exactly the stale-compiled-recognizer bug the oracle exists to
catch.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass

from repro.errors import (
    InfeasiblePlanError,
    PlanExecutionError,
    QueryFixingError,
    TransientSourceError,
    UnsupportedQueryError,
)
from repro.mediator import Mediator
from repro.query import TargetQuery
from repro.source.faults import FaultInjector, SimulatedLatency
from repro.source.source import CapabilitySource
from repro.workloads.named import (
    Workload,
    WorkloadReport,
    derive_seed,
    register,
)
from repro.workloads.synthetic import (
    WorldConfig,
    make_description,
    make_queries,
    make_table,
)

#: Richness levels drift cycles through (capability drift is visible:
#: a mutation can both grow and shrink the supported query space).
_RICHNESS = (0.5, 0.7, 0.9)


@dataclass(frozen=True)
class AskOutcome:
    """One oracle-checked ask, classified.

    ``kind`` is one of ``ok`` / ``infeasible`` (a legitimate post-drift
    answer: the new grammar no longer supports the shape) / ``faulted``
    (injected transient fault) / ``removed`` (the source vanished
    between pick and ask -- only possible under concurrent drift) /
    ``raced_drift`` (the catalog moved mid-ask and execution hit the
    new world) / ``stale`` (the violation: a plan served or enforced
    against an older catalog than the ask was admitted under).
    """

    kind: str
    admitted_version: int
    served_version: int | None = None
    error: str | None = None


def oracle_ask(mediator: Mediator, query: TargetQuery) -> AskOutcome:
    """Ask with the drift oracle attached (see module docstring)."""
    admitted = mediator.catalog_version
    try:
        answer = mediator.ask(query)
    except InfeasiblePlanError:
        return AskOutcome("infeasible", admitted)
    except TransientSourceError as exc:
        return AskOutcome("faulted", admitted, error=str(exc))
    except (UnsupportedQueryError, QueryFixingError) as exc:
        if mediator.catalog_version != admitted:
            return AskOutcome("raced_drift", admitted, error=str(exc))
        return AskOutcome("stale", admitted, error=str(exc))
    except PlanExecutionError as exc:
        if mediator.catalog_version != admitted:
            return AskOutcome("removed", admitted, error=str(exc))
        return AskOutcome("stale", admitted, error=str(exc))
    served = answer.planning.catalog_version
    if served is None or served < admitted:
        return AskOutcome("stale", admitted, served,
                          error="served plan predates admission version")
    return AskOutcome("ok", admitted, served)


class DriftingCatalog:
    """A seeded driver mutating a mediator's catalog mid-run.

    Thread-safe: the driver's RNG, query pools and event log are
    guarded by one lock, so concurrent drifter threads interleave
    cleanly while asker threads snapshot query pools without tearing.
    The *mediator* mutations themselves go through the public
    ``add_source`` / ``remove_source`` / ``mutate_source`` API -- the
    machinery under test.
    """

    def __init__(
        self,
        mediator: Mediator,
        seed: int,
        initial_sources: int = 3,
        min_sources: int = 1,
        max_sources: int = 8,
        n_attributes: int = 6,
        n_rows: int = 240,
        queries_per_source: int = 12,
        fault_rate: float = 0.0,
        latency_base: float = 0.0,
    ):
        self.mediator = mediator
        self.seed = seed
        self.min_sources = min_sources
        self.max_sources = max_sources
        self.n_attributes = n_attributes
        self.n_rows = n_rows
        self.queries_per_source = queries_per_source
        self.fault_rate = fault_rate
        self.latency_base = latency_base
        self._rng = random.Random(derive_seed(seed, "drift-schedule"))
        self._lock = threading.Lock()
        self._next_id = 0
        self._generations: dict[str, int] = {}
        #: Per-source query pools (queries of removed sources are
        #: dropped -- the driver never knowingly asks a dead source).
        self.queries: dict[str, list[TargetQuery]] = {}
        #: Deterministic drift log: (kind, source name, catalog version).
        self.events: list[tuple[str, str, int]] = []
        for _ in range(initial_sources):
            self.add_source()

    # ------------------------------------------------------------------
    def _world(self, label: str, richness: float) -> WorldConfig:
        return WorldConfig(
            n_attributes=self.n_attributes,
            n_rows=self.n_rows,
            richness=richness,
            download_prob=1.0,
            seed=derive_seed(self.seed, label),
        )

    def live_names(self) -> list[str]:
        with self._lock:
            return sorted(self.queries)

    def queries_for(self, name: str) -> list[TargetQuery]:
        """Snapshot of one source's query pool ([] once removed)."""
        with self._lock:
            return list(self.queries.get(name, ()))

    # -- the three drift kinds -----------------------------------------
    def add_source(self) -> str:
        with self._lock:
            source_id = self._next_id
            self._next_id += 1
            name = f"fed{source_id}"
            richness = self._rng.choice(_RICHNESS)
            config = self._world(f"world:{source_id}", richness)
            source = CapabilitySource(
                name, make_table(config), make_description(config)
            )
            if self.fault_rate > 0.0:
                source.fault_injector = FaultInjector(
                    seed=derive_seed(self.seed, f"faults:{name}"),
                    transient_rate=self.fault_rate,
                )
            if self.latency_base > 0.0:
                source.latency = SimulatedLatency(
                    seed=derive_seed(self.seed, f"latency:{name}"),
                    base=self.latency_base, real_sleep=False,
                )
            pool = make_queries(
                config, source, self.queries_per_source, n_atoms=3,
                seed=derive_seed(self.seed, f"queries:{source_id}"),
            )
            self._generations[name] = 0
        # Mediator mutation outside the driver lock: add_source compiles
        # grammars, and asker threads must not stall behind that.
        self.mediator.add_source(source)
        with self._lock:
            self.queries[name] = pool
            self.events.append(("add", name, self.mediator.catalog_version))
        return name

    def remove_source(self, name: str | None = None) -> str:
        with self._lock:
            if name is None:
                name = self._rng.choice(sorted(self.queries))
            self.queries.pop(name, None)
        self.mediator.remove_source(name)
        with self._lock:
            self.events.append(
                ("remove", name, self.mediator.catalog_version))
        return name

    def mutate_source(self, name: str | None = None) -> str:
        with self._lock:
            if name is None:
                name = self._rng.choice(sorted(self.queries))
            generation = self._generations[name] + 1
            self._generations[name] = generation
            richness = self._rng.choice(_RICHNESS)
            config = self._world(f"mutate:{name}:{generation}", richness)
        description = make_description(config)
        self.mediator.mutate_source(name, description)
        with self._lock:
            self.events.append(
                ("mutate", name, self.mediator.catalog_version))
        return name

    def drift(self) -> str:
        """One drift event; the kind is drawn from the seeded schedule
        (respecting the min/max source-count bounds).  Returns the kind."""
        with self._lock:
            live = len(self.queries)
            kinds = ["mutate"]
            if live > self.min_sources:
                kinds.append("remove")
            if live < self.max_sources:
                kinds.append("add")
            kind = self._rng.choice(kinds)
        if kind == "add":
            self.add_source()
        elif kind == "remove":
            self.remove_source()
        else:
            self.mutate_source()
        return kind

    # ------------------------------------------------------------------
    def pick_query(self, rng: random.Random) -> TargetQuery | None:
        """A query against a currently-live source, drawn with ``rng``
        (callers own their RNG so concurrent askers stay deterministic
        per-thread).  None when the catalog is momentarily empty."""
        with self._lock:
            if not self.queries:
                return None
            name = rng.choice(sorted(self.queries))
            return rng.choice(self.queries[name])


@register
class DynamicFederationWorkload(Workload):
    """Interleaved asks and drift events with the stale-plan oracle."""

    name = "dynamic_federation"
    description = (
        "sources join/leave/mutate mid-run; oracle proves every ask "
        "sees post-drift semantics (no stale plan across versions)"
    )

    def __init__(
        self,
        seed: int = 1999,
        rounds: int = 320,
        drift_every: int = 8,
        initial_sources: int = 3,
        n_rows: int = 240,
        plan_cache_entries: int = 512,
        fault_rate: float = 0.0,
    ):
        super().__init__(seed)
        self.rounds = rounds
        self.drift_every = drift_every
        self.initial_sources = initial_sources
        self.n_rows = n_rows
        self.plan_cache_entries = plan_cache_entries
        self.fault_rate = fault_rate

    def _build(self, seed: int) -> tuple[Mediator, DriftingCatalog]:
        mediator = Mediator(plan_cache_entries=self.plan_cache_entries)
        catalog = DriftingCatalog(
            mediator, seed,
            initial_sources=self.initial_sources,
            n_rows=self.n_rows,
            fault_rate=self.fault_rate,
        )
        return mediator, catalog

    def run(self) -> WorkloadReport:
        mediator, catalog = self._build(self.seed)
        traffic = random.Random(derive_seed(self.seed, "traffic"))
        outcomes: Counter[str] = Counter()
        drift_kinds: Counter[str] = Counter()
        for round_index in range(self.rounds):
            if self.drift_every and (round_index + 1) % self.drift_every == 0:
                drift_kinds[catalog.drift()] += 1
            query = catalog.pick_query(traffic)
            if query is None:  # pragma: no cover - min_sources >= 1
                continue
            outcomes[oracle_ask(mediator, query).kind] += 1
        cache = mediator.plan_cache.stats
        total = cache.hits + cache.misses
        summary = {
            "rounds": self.rounds,
            "asks": sum(outcomes.values()),
            "ok": outcomes["ok"],
            "infeasible": outcomes["infeasible"],
            "faulted": outcomes["faulted"],
            "stale_serves": outcomes["stale"],
            "drift_events": sum(drift_kinds.values()),
            "drift_add": drift_kinds["add"],
            "drift_remove": drift_kinds["remove"],
            "drift_mutate": drift_kinds["mutate"],
            "catalog_version": mediator.catalog_version,
            "plan_cache_hits": cache.hits,
            "plan_cache_misses": cache.misses,
            "plan_cache_invalidations": cache.invalidations,
            "template_hits": mediator.plan_templates.hits,
            "hit_rate": round(cache.hits / total, 4) if total else 0.0,
            "drift_log_length": len(catalog.events),
        }
        return self._report(summary)

    # ------------------------------------------------------------------
    def battery(
        self,
        threads: int = 16,
        drifts_per_driver: int = 24,
        drivers: int = 2,
    ) -> dict:
        """16-thread concurrent drift oracle: asker threads hammer the
        mediator while drifter threads add/remove/mutate sources; every
        served plan's catalog version must match or postdate its ask's
        admission version -- zero stale serves, reconciled exactly."""
        mediator, catalog = self._build(derive_seed(self.seed, "battery"))
        outcomes: Counter[str] = Counter()
        outcome_lock = threading.Lock()
        stale: list[AskOutcome] = []
        stop = threading.Event()
        barrier = threading.Barrier(threads)
        askers = threads - drivers

        def ask_loop(slot: int) -> None:
            rng = random.Random(derive_seed(self.seed, f"asker:{slot}"))
            barrier.wait()
            while not stop.is_set():
                query = catalog.pick_query(rng)
                if query is None:  # pragma: no cover - catalog never empties
                    continue
                outcome = oracle_ask(mediator, query)
                with outcome_lock:
                    outcomes[outcome.kind] += 1
                    if outcome.kind == "stale":
                        stale.append(outcome)

        def drift_loop(slot: int) -> None:
            barrier.wait()
            try:
                for _ in range(drifts_per_driver):
                    kind = catalog.drift()
                    with outcome_lock:
                        outcomes[f"drift_{kind}"] += 1
            finally:
                # Last drifter out stops the askers.
                if stop_counter.release_one():
                    stop.set()

        class _Latch:
            def __init__(self, count: int):
                self._count = count
                self._lock = threading.Lock()

            def release_one(self) -> bool:
                with self._lock:
                    self._count -= 1
                    return self._count == 0

        stop_counter = _Latch(drivers)
        workers = [
            threading.Thread(target=ask_loop, args=(slot,), daemon=True,
                             name=f"fed-ask-{slot}")
            for slot in range(askers)
        ] + [
            threading.Thread(target=drift_loop, args=(slot,), daemon=True,
                             name=f"fed-drift-{slot}")
            for slot in range(drivers)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120.0)
            assert not worker.is_alive(), f"{worker.name} wedged"
        assert not stale, f"stale plan serves detected: {stale[:3]}"
        asks = sum(
            count for kind, count in outcomes.items()
            if not kind.startswith("drift_")
        )
        assert asks > 0
        drift_events = sum(
            count for kind, count in outcomes.items()
            if kind.startswith("drift_")
        )
        assert drift_events == drivers * drifts_per_driver
        return {
            "threads": threads,
            "asks": asks,
            "drift_events": drift_events,
            "stale_serves": len(stale),
            "outcomes": dict(sorted(outcomes.items())),
            "catalog_version": mediator.catalog_version,
        }
