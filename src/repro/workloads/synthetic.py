"""Synthetic worlds: random capability-limited sources and random queries.

The paper's evaluation (extended version) studies plan quality and
planning efficiency over many queries and many sources with varied
capabilities.  This module generates both, seeded:

* :func:`make_table` -- a relation over ``m`` attributes (mixed
  categorical/numeric, Zipf-skewed);
* :func:`make_description` -- a random SSDL description whose
  **richness** knob controls how much of the query space the source
  supports (benchmark E6);
* :func:`make_source` -- the two combined;
* :func:`random_condition` / :func:`make_queries` -- random condition
  trees over the source's attributes with data-grounded constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import And, Condition, Leaf, Or
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.description import SourceDescription

#: Categorical value pool sizes cycle through these.
_CARDINALITIES = (4, 8, 16, 32)


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of a synthetic world."""

    n_attributes: int = 6
    n_rows: int = 4000
    #: Fraction of the atomic-condition template space the grammar covers.
    richness: float = 0.6
    #: Probability the source allows full download (a ``true`` rule).
    download_prob: float = 0.15
    #: Per-attribute probability of appearing in a rule's export set.
    export_prob: float = 0.8
    seed: int = 42


def _attribute_names(n: int) -> list[str]:
    return ["key"] + [f"a{i}" for i in range(n)]


def make_schema(n_attributes: int) -> Schema:
    """``key`` plus ``a0..a{n-1}``; even attrs categorical, odd numeric."""
    spec: list[tuple[str, AttrType]] = [("key", AttrType.INT)]
    for i in range(n_attributes):
        kind = AttrType.STRING if i % 2 == 0 else AttrType.INT
        spec.append((f"a{i}", kind))
    return Schema.of("world", spec, key="key")


def make_table(config: WorldConfig) -> Relation:
    """A Zipf-skewed table for the synthetic schema."""
    rng = random.Random(config.seed)
    schema = make_schema(config.n_attributes)
    rows = []
    pools: dict[str, list] = {}
    for index in range(config.n_attributes):
        name = f"a{index}"
        if index % 2 == 0:
            size = _CARDINALITIES[index % len(_CARDINALITIES)]
            pools[name] = [f"v{index}_{j}" for j in range(size)]
        else:
            pools[name] = list(range(0, 1000))
    for row_index in range(config.n_rows):
        row = {"key": row_index}
        for index in range(config.n_attributes):
            name = f"a{index}"
            pool = pools[name]
            if index % 2 == 0:
                weights = [1.0 / (r + 1) for r in range(len(pool))]
                row[name] = rng.choices(pool, weights=weights, k=1)[0]
            else:
                row[name] = rng.randint(0, 999)
        rows.append(row)
    return Relation(schema, rows, validate=False)


def template_space(n_attributes: int) -> list[tuple[str, str]]:
    """Every (attribute, op-text) template a query generator may use."""
    templates: list[tuple[str, str]] = []
    for index in range(n_attributes):
        name = f"a{index}"
        if index % 2 == 0:
            templates.append((name, "="))
        else:
            templates.extend([(name, "="), (name, "<="), (name, ">=")])
    return templates


def make_description(config: WorldConfig) -> SourceDescription:
    """A random description covering ``richness`` of the template space.

    The grammar gets: one single-template rule per supported template,
    a handful of conjunctive rules (width 2-3, in a fixed random order,
    i.e. order-sensitive), and -- with ``download_prob`` -- a ``true``
    rule.  Export sets always include ``key`` plus a random subset of
    the other attributes (so some projections are not exportable).
    """
    rng = random.Random(config.seed * 7919 + 13)
    all_templates = template_space(config.n_attributes)
    n_supported = max(1, round(config.richness * len(all_templates)))
    supported = rng.sample(all_templates, n_supported)
    attr_names = _attribute_names(config.n_attributes)

    def const_class(op_text: str, attr: str) -> str:
        index = int(attr[1:])
        return "$str" if index % 2 == 0 else "$num"

    def export_set(rng: random.Random) -> list[str]:
        others = [a for a in attr_names if a != "key"]
        chosen = [a for a in others if rng.random() < config.export_prob]
        return ["key"] + chosen

    builder = DescriptionBuilder(f"world-r{config.richness:.2f}")
    for rule_index, (attr, op_text) in enumerate(supported):
        rhs = f"{attr} {op_text} {const_class(op_text, attr)}"
        builder.rule(f"t{rule_index}", rhs, attributes=export_set(rng))
    # Conjunctive rules over supported templates.
    n_conj = max(1, n_supported // 2)
    for conj_index in range(n_conj):
        width = rng.choice((2, 2, 3))
        if len(supported) < width:
            break
        chosen = rng.sample(supported, width)
        # Skip degenerate conjunctions repeating an attribute with '='.
        if len({attr for attr, _ in chosen}) < width:
            continue
        rhs = " and ".join(
            f"{attr} {op_text} {const_class(op_text, attr)}"
            for attr, op_text in chosen
        )
        builder.rule(f"c{conj_index}", rhs, attributes=export_set(rng))
    if rng.random() < config.download_prob:
        builder.rule("dl", "true", attributes=attr_names)
    return builder.build()


def make_source(config: WorldConfig) -> CapabilitySource:
    """A synthetic capability-limited source for the given config."""
    return CapabilitySource(
        f"world{config.seed}",
        make_table(config),
        make_description(config),
    )


# ----------------------------------------------------------------------
# Random condition trees
# ----------------------------------------------------------------------

def random_atom(config: WorldConfig, rng: random.Random) -> Atom:
    """A random atomic condition with a data-plausible constant."""
    attr, op_text = rng.choice(template_space(config.n_attributes))
    index = int(attr[1:])
    if index % 2 == 0:
        size = _CARDINALITIES[index % len(_CARDINALITIES)]
        value: object = f"v{index}_{rng.randrange(size)}"
    else:
        value = rng.randrange(0, 1000)
    op = {"=": Op.EQ, "<=": Op.LE, ">=": Op.GE}[op_text]
    return Atom(attr, op, value)


def random_condition(
    config: WorldConfig,
    n_atoms: int,
    rng: random.Random,
    or_prob: float = 0.5,
) -> Condition:
    """A random alternating condition tree with ``n_atoms`` leaves."""
    if n_atoms <= 1:
        return Leaf(random_atom(config, rng))
    top_is_or = rng.random() < or_prob

    def build(count: int, is_or: bool) -> Condition:
        if count == 1:
            return Leaf(random_atom(config, rng))
        fanout = min(count, rng.randint(2, 4))
        splits = _partition(count, fanout, rng)
        children = [
            build(size, not is_or) if size > 1 else Leaf(random_atom(config, rng))
            for size in splits
        ]
        return Or(children) if is_or else And(children)

    return build(n_atoms, top_is_or)


def _partition(total: int, parts: int, rng: random.Random) -> list[int]:
    """Split ``total`` into ``parts`` positive integers."""
    sizes = [1] * parts
    for _ in range(total - parts):
        sizes[rng.randrange(parts)] += 1
    return sizes


def make_queries(
    config: WorldConfig,
    source: CapabilitySource,
    n_queries: int,
    n_atoms: int,
    seed: int | None = None,
    or_prob: float = 0.5,
) -> list[TargetQuery]:
    """Random target queries; projections are ``key`` plus 1-2 attributes."""
    rng = random.Random(config.seed * 31 + 1 if seed is None else seed)
    attrs = _attribute_names(config.n_attributes)
    queries = []
    for _ in range(n_queries):
        condition = random_condition(config, n_atoms, rng, or_prob)
        extra = rng.sample([a for a in attrs if a != "key"], rng.randint(1, 2))
        queries.append(
            TargetQuery(condition, frozenset(["key"] + extra), source.name)
        )
    return queries
