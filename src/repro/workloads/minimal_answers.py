"""Minimal-answer mode: prove pruning subsumed union branches is free.

Johnson's minimal-answers observation (see ``repro.plans.minimal``):
when a disjunctive plan unions branch ``SP(C1, A, R)`` with branch
``SP(C2, A, R)`` and ``C2`` provably implies ``C1``, the second branch
contributes no row the first does not already fetch -- executing it
buys nothing but source round-trips.  The mediator's
``minimal_answers`` mode prunes such branches per ask; this workload
is the evidence that the mode is *safe* (identical answer sets) and
*worthwhile* (it actually saves source queries on overlap-heavy
traffic).

The scenario runs the same seeded overlap-heavy query stream through
two mediators over twin sources -- one with ``minimal_answers`` off,
one with it on -- and reconciles, per query, the answer rows (must be
set-identical) and the executed source-query counts (the pruned side
must never execute more).  The battery asserts the property over every
query and that the stream actually exercised pruning (a vacuous pass
is a failure).
"""

from __future__ import annotations

import random

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import And, Condition, Leaf, Or
from repro.data.relation import Relation
from repro.data.schema import AttrType, Schema
from repro.mediator import Mediator
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder
from repro.workloads.named import (
    Workload,
    WorkloadReport,
    derive_seed,
    register,
)

_CATS = ("books", "cars", "tools", "games", "music")
_TAGS = ("new", "used", "rare", "bulk")
_ATTRS = ["cat", "price", "tag", "item"]


def overlap_source(seed: int, n_rows: int, name: str = "shop"
                   ) -> CapabilitySource:
    """A seeded source whose grammar invites overlapping union branches.

    Every condition nonterminal exports all attributes, so disjunctive
    queries plan as unions of per-branch source queries -- and the
    grammar supports both each conjunction and its weaker prefixes,
    which is exactly what makes subsumed branches plannable at all.
    """
    rng = random.Random(seed)
    schema = Schema.of(
        name,
        [("cat", AttrType.STRING), ("price", AttrType.INT),
         ("tag", AttrType.STRING), ("item", AttrType.STRING)],
        key="item",
    )
    rows = [
        {
            "cat": rng.choice(_CATS),
            "price": rng.randrange(0, 100),
            "tag": rng.choice(_TAGS),
            "item": f"i{index}",
        }
        for index in range(n_rows)
    ]
    description = (
        DescriptionBuilder(name)
        .rule("bycat", "cat = $str", attributes=_ATTRS)
        .rule("byprice", "price < $num | price > $num", attributes=_ATTRS)
        .rule("bytag", "tag = $str", attributes=_ATTRS)
        .rule("bycatprice", "cat = $str and price < $num",
              attributes=_ATTRS)
        .rule("bytagprice", "tag = $str and price > $num",
              attributes=_ATTRS)
        .build()
    )
    return CapabilitySource(name, Relation(schema, rows), description)


def overlap_queries(seed: int, count: int, source: str = "shop"
                    ) -> list[TargetQuery]:
    """A seeded overlap-heavy disjunctive stream.

    Mixes shapes whose union branches are provably subsumed (a
    conjunction or'd with its own weaker conjunct; two thresholds on
    one attribute) with genuinely disjoint disjunctions, so pruning
    must fire on some queries and must *not* fire on others.
    """
    rng = random.Random(seed)
    out: list[TargetQuery] = []

    def cat_atom() -> Atom:
        return Atom("cat", Op.EQ, rng.choice(_CATS))

    while len(out) < count:
        shape = rng.randrange(5)
        if shape == 0:
            # C or (C and D): the conjunction is subsumed.
            cat = cat_atom()
            condition: Condition = Or([
                Leaf(cat),
                And([Leaf(cat),
                     Leaf(Atom("price", Op.LT, rng.randrange(20, 90)))]),
            ])
        elif shape == 1:
            # price < a or price < b (a != b): the tighter bound is
            # subsumed by the looser one.
            low = rng.randrange(10, 50)
            condition = Or([
                Leaf(Atom("price", Op.LT, low)),
                Leaf(Atom("price", Op.LT, low + rng.randrange(5, 40))),
            ])
        elif shape == 2:
            # Disjoint branches: nothing to prune.
            condition = Or([
                Leaf(cat_atom()),
                Leaf(Atom("tag", Op.EQ, rng.choice(_TAGS))),
            ])
        elif shape == 3:
            # Two subsumed branches under one keeper.
            tag = Atom("tag", Op.EQ, rng.choice(_TAGS))
            pivot = rng.randrange(10, 40)
            condition = Or([
                Leaf(tag),
                And([Leaf(tag), Leaf(Atom("price", Op.GT, pivot))]),
                And([Leaf(tag),
                     Leaf(Atom("price", Op.GT, pivot + 10))]),
            ])
        else:
            # Plain conjunction: no union at all.
            condition = And([
                Leaf(cat_atom()),
                Leaf(Atom("price", Op.LT, rng.randrange(30, 90))),
            ])
        out.append(TargetQuery(
            source=source,
            attributes=frozenset(("item", "cat", "price")),
            condition=condition,
        ))
    return out


def _row_key(row: dict) -> tuple:
    return tuple(sorted(row.items()))


@register
class MinimalAnswerWorkload(Workload):
    """Pruned vs unpruned mediators over twin sources, reconciled."""

    name = "minimal_answers"
    description = (
        "overlap-heavy disjunctions through minimal-answer pruning; "
        "property battery proves pruned == unpruned answer sets"
    )

    def __init__(
        self,
        seed: int = 1999,
        n_queries: int = 60,
        n_rows: int = 160,
    ):
        super().__init__(seed)
        self.n_queries = n_queries
        self.n_rows = n_rows

    def _execute(self) -> dict:
        world_seed = derive_seed(self.seed, "world")
        baseline = Mediator()
        baseline.add_source(overlap_source(world_seed, self.n_rows))
        minimal = Mediator(minimal_answers=True)
        minimal.add_source(overlap_source(world_seed, self.n_rows))
        queries = overlap_queries(
            derive_seed(self.seed, "queries"), self.n_queries)
        registry = MetricsRegistry()
        totals = {
            "queries": len(queries),
            "mismatched_answers": 0,
            "rows": 0,
            "baseline_source_queries": 0,
            "minimal_source_queries": 0,
            "queries_with_pruning": 0,
            "regressions": 0,
        }
        with use_metrics(registry):
            for query in queries:
                before = registry.counter(
                    "mediator.union_branches_pruned").value
                base_answer = baseline.ask(query)
                min_answer = minimal.ask(query)
                pruned = registry.counter(
                    "mediator.union_branches_pruned").value - before
                base_rows = {_row_key(r) for r in base_answer.rows}
                min_rows = {_row_key(r) for r in min_answer.rows}
                if base_rows != min_rows:
                    totals["mismatched_answers"] += 1
                totals["rows"] += len(base_rows)
                totals["baseline_source_queries"] += \
                    base_answer.report.queries
                totals["minimal_source_queries"] += \
                    min_answer.report.queries
                if pruned:
                    totals["queries_with_pruning"] += 1
                if min_answer.report.queries > base_answer.report.queries:
                    totals["regressions"] += 1
        totals["branches_pruned"] = int(registry.counter(
            "mediator.union_branches_pruned").value)
        totals["source_queries_saved"] = (
            totals["baseline_source_queries"]
            - totals["minimal_source_queries"]
        )
        return totals

    def run(self) -> WorkloadReport:
        return self._report(self._execute())

    def battery(self) -> dict:
        totals = self._execute()
        assert totals["mismatched_answers"] == 0, (
            f"pruning changed {totals['mismatched_answers']} answer sets"
        )
        assert totals["regressions"] == 0, (
            "a pruned plan executed more source queries than its baseline"
        )
        assert totals["branches_pruned"] >= 1, (
            "the overlap-heavy stream never triggered pruning"
        )
        assert totals["queries_with_pruning"] < totals["queries"], (
            "every query pruned -- the no-pruning shapes went missing"
        )
        assert totals["source_queries_saved"] >= \
            totals["branches_pruned"], (
            "each pruned branch should save at least one source query"
        )
        return totals
