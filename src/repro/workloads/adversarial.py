"""Adversarial SSDL: ambiguous grammars and huge commutation closures.

The compiled token-trie recognizer (``repro.ssdl.compiled``) is an
*optimization* with two escape hatches -- a compile-time sequence budget
(grammars too large keep their Earley recognizer) and a token horizon
(conditions too long fall back to Earley per call).  Both hatches are
easy to never hit with friendly grammars, which is exactly why this
workload builds hostile ones:

* **deep ambiguity** -- several condition nonterminals accepting the
  same token language with *different* export sets, plus helper-chain
  and right-recursive rules, so a single condition matches many
  nonterminals through many derivations;
* **huge commutation closures** -- order-sensitive conjunctive rules at
  the closure's ``max_segments`` width, so the commutation-closed
  grammar carries factorially many permuted rules (6 segments = 720
  permutations per rule) and compilation genuinely fights its budget.

The battery proves two things.  **Parity**: for every generated
condition, a compiled description and its never-compiled twin produce
*identical* ``Check`` results -- the optimization is invisible.
**Accounting**: the registry counters ``ssdl.compile.budget_exceeded``
and ``ssdl.check.fallback`` reconcile *exactly* with the
per-description ``check_compiled``/``check_fallbacks`` counters, and
for every compiled description ``cache-missing checks == compiled
answers + fallbacks`` -- no Check is ever silently unaccounted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.conditions.atoms import Atom, Op
from repro.conditions.tree import And, Condition, Leaf, Or
from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.ssdl.builder import DescriptionBuilder
from repro.ssdl.commute import commutation_closure
from repro.ssdl.description import SourceDescription
from repro.workloads.named import (
    Workload,
    WorkloadReport,
    derive_seed,
    register,
)

#: (attribute, op, rhs-template) pools the generator draws segments from.
_STRING_OPS = ((Op.EQ, "$str"), (Op.CONTAINS, "$str"))
_NUMERIC_OPS = ((Op.LT, "$num"), (Op.GT, "$num"), (Op.EQ, "$num"))


@dataclass
class AdversarialGrammar:
    """A reproducible hostile grammar: rebuild as many twins as needed.

    ``build()`` constructs a *fresh* :class:`SourceDescription` each
    call (twins share no recognizer, cache or compiled state -- the
    parity battery needs a compiled copy and an untouched copy of the
    same grammar).  ``wide_specs`` lists each order-sensitive
    conjunctive rule's segments, so condition generators can produce
    exact permutations of them (the inputs that exercise the
    commutation closure hardest).
    """

    seed: int
    n_attributes: int = 6
    ambiguity: int = 3
    chain_depth: int = 4
    wide_rules: int = 2
    segments: int = 6
    wide_specs: list[list[tuple[str, Op]]] = field(default_factory=list)

    def __post_init__(self) -> None:
        rng = random.Random(self.seed)
        attrs = [f"a{i}" for i in range(self.n_attributes)]
        self._attrs = attrs
        #: (attr, op, rhs template) for every single-atom rule.
        self._atom_rules: list[tuple[str, Op, str]] = []
        for index, attr in enumerate(attrs):
            pool = _STRING_OPS if index % 2 == 0 else _NUMERIC_OPS
            op, template = pool[rng.randrange(len(pool))]
            self._atom_rules.append((attr, op, template))
        self.wide_specs = []
        for _ in range(self.wide_rules):
            picks = rng.sample(range(len(self._atom_rules)),
                               min(self.segments, len(self._atom_rules)))
            self.wide_specs.append(
                [(self._atom_rules[i][0], self._atom_rules[i][1])
                 for i in picks]
            )
            # Remember the template text per segment for the RHS.
            self._wide_rhs = getattr(self, "_wide_rhs", [])
            self._wide_rhs.append(" and ".join(
                f"{self._atom_rules[i][0]} {self._atom_rules[i][1].value} "
                f"{self._atom_rules[i][2]}"
                for i in picks
            ))

    def build(self) -> SourceDescription:
        attrs = self._attrs
        builder = DescriptionBuilder(f"adversarial{self.seed}")
        base_attr, base_op, base_template = self._atom_rules[0]
        base_rhs = f"{base_attr} {base_op.value} {base_template}"
        # Deep ambiguity: identical languages, different export sets --
        # one condition, many matching nonterminals.
        for index in range(self.ambiguity):
            exported = [attrs[0]] + attrs[1:2 + index]
            builder.rule(f"amb{index}", base_rhs, attributes=exported)
        # A helper chain ending in a condition nonterminal: every parse
        # threads the whole chain (ambiguous with the amb* rules too,
        # since the chain's bottom alternative is the same base atom).
        builder.helper("h0", base_rhs)
        for depth in range(1, self.chain_depth):
            attr, op, template = self._atom_rules[
                depth % len(self._atom_rules)]
            builder.helper(
                f"h{depth}",
                f"h{depth - 1} | {attr} {op.value} {template}",
            )
        builder.rule("chain", f"h{self.chain_depth - 1}",
                     attributes=attrs[:2])
        # Right-recursive disjunction list (unbounded language: the
        # compiler must truncate enumeration at its token horizon).
        rec_attr, rec_op, rec_template = self._atom_rules[
            1 % len(self._atom_rules)]
        rec_rhs = f"{rec_attr} {rec_op.value} {rec_template}"
        builder.helper("orlist", f"{rec_rhs} | {rec_rhs} or orlist")
        builder.rule("disj", "orlist", attributes=attrs[:1])
        # Order-sensitive wide conjunctions: the commutation closure
        # expands each into segments! permuted rules.
        for index, rhs in enumerate(self._wide_rhs):
            builder.rule(f"wide{index}", rhs, attributes=attrs)
        return builder.build()

    # ------------------------------------------------------------------
    def _atom(self, rng: random.Random, spec: tuple[str, Op]) -> Atom:
        attr, op = spec
        if op in (Op.EQ, Op.CONTAINS) and attr in self._attrs \
                and self._attrs.index(attr) % 2 == 0:
            return Atom(attr, op, f"v{rng.randrange(50)}")
        if op is Op.CONTAINS:
            return Atom(attr, op, f"v{rng.randrange(50)}")
        return Atom(attr, op, rng.randrange(1000))

    def conditions(self, seed: int, count: int) -> list[Condition]:
        """A seeded adversarial condition pool: supported atoms,
        unsupported operators, wide-rule permutations (native order and
        shuffled -- the closure-only inputs), flat and nested
        connectors, and beyond-horizon conjunctions."""
        rng = random.Random(seed)
        out: list[Condition] = []
        specs = [(attr, op) for attr, op, _ in self._atom_rules]
        while len(out) < count:
            shape = rng.randrange(7)
            if shape == 0:  # single supported atom
                out.append(Leaf(self._atom(rng, rng.choice(specs))))
            elif shape == 1:  # single unsupported atom (wrong op)
                attr, op = rng.choice(specs)
                wrong = Op.NE if op is not Op.NE else Op.LT
                out.append(Leaf(Atom(attr, wrong, 7)))
            elif shape == 2 and self.wide_specs:  # wide rule, native order
                spec = rng.choice(self.wide_specs)
                out.append(And([Leaf(self._atom(rng, s)) for s in spec]))
            elif shape == 3 and self.wide_specs:  # wide rule, permuted
                spec = list(rng.choice(self.wide_specs))
                rng.shuffle(spec)
                out.append(And([Leaf(self._atom(rng, s)) for s in spec]))
            elif shape == 4:  # flat disjunction (orlist shape)
                width = rng.randrange(2, 6)
                spec = specs[1 % len(specs)]
                out.append(Or([Leaf(self._atom(rng, spec))
                               for _ in range(width)]))
            elif shape == 5:  # nested connector
                inner = Or([Leaf(self._atom(rng, rng.choice(specs)))
                            for _ in range(2)])
                out.append(And([Leaf(self._atom(rng, rng.choice(specs))),
                                inner]))
            else:  # beyond any horizon: token count > 2 * atoms - 1
                width = rng.randrange(17, 22)
                out.append(And([Leaf(self._atom(rng, rng.choice(specs)))
                                for _ in range(width)]))
        return out


@register
class AdversarialSSDLWorkload(Workload):
    """Hostile grammars: compiled≡Earley parity + exact accounting."""

    name = "adversarial_ssdl"
    description = (
        "ambiguous grammars with factorial commutation closures; "
        "compiled vs Earley parity and exact budget/fallback accounting"
    )

    def __init__(
        self,
        seed: int = 1999,
        n_grammars: int = 6,
        conditions_per_grammar: int = 48,
        segments: int = 6,
        tight_sequences: int = 40,
        tight_tokens: int = 9,
    ):
        """Every third grammar compiles with ``tight_sequences`` (to
        force ``budget_exceeded``); every third with ``tight_tokens``
        (to force per-call fallbacks); the rest with the defaults."""
        super().__init__(seed)
        self.n_grammars = n_grammars
        self.conditions_per_grammar = conditions_per_grammar
        self.segments = segments
        self.tight_sequences = tight_sequences
        self.tight_tokens = tight_tokens

    # ------------------------------------------------------------------
    def _execute(self) -> dict:
        """One full pass under an isolated metrics registry; returns the
        deterministic accounting the run report and battery share."""
        registry = MetricsRegistry()
        totals = {
            "grammars": self.n_grammars,
            "parity_checks": 0,
            "parity_mismatches": 0,
            "compiled_ok": 0,
            "budget_exceeded": 0,
            "compiled_answers": 0,
            "fallbacks": 0,
            "native_rules": 0,
            "closure_rules": 0,
            "sequences": 0,
            "accounting_exact": True,
        }
        compile_attempts = 0
        with use_metrics(registry):
            for index in range(self.n_grammars):
                grammar = AdversarialGrammar(
                    derive_seed(self.seed, f"grammar:{index}"),
                    segments=self.segments,
                )
                compiled_native = grammar.build()
                twin_native = grammar.build()
                compiled_closed = commutation_closure(compiled_native)
                twin_closed = commutation_closure(twin_native)
                totals["native_rules"] += compiled_native.rule_count()
                totals["closure_rules"] += compiled_closed.rule_count()
                kwargs: dict = {}
                if index % 3 == 1:
                    kwargs["max_sequences"] = self.tight_sequences
                elif index % 3 == 2:
                    kwargs["max_tokens"] = self.tight_tokens
                for description in (compiled_native, compiled_closed):
                    report = description.compile(**kwargs)
                    compile_attempts += 1
                    if report.compiled:
                        totals["compiled_ok"] += 1
                        totals["sequences"] += report.sequences
                    else:
                        totals["budget_exceeded"] += 1
                pool = grammar.conditions(
                    derive_seed(self.seed, f"conditions:{index}"),
                    self.conditions_per_grammar,
                )
                for condition in pool:
                    for left, right in (
                        (compiled_native, twin_native),
                        (compiled_closed, twin_closed),
                    ):
                        totals["parity_checks"] += 1
                        if left.check(condition) != right.check(condition):
                            totals["parity_mismatches"] += 1
                for description in (compiled_native, compiled_closed):
                    totals["compiled_answers"] += description.check_compiled
                    totals["fallbacks"] += description.check_fallbacks
                    if description.compiled and (
                        description.check_calls
                        != description.check_compiled
                        + description.check_fallbacks
                    ):
                        totals["accounting_exact"] = False
        registry_budget = registry.counter(
            "ssdl.compile.budget_exceeded").value
        registry_fallbacks = registry.counter("ssdl.check.fallback").value
        totals["registry_budget_exceeded"] = int(registry_budget)
        totals["registry_fallbacks"] = int(registry_fallbacks)
        if registry_budget != totals["budget_exceeded"]:
            totals["accounting_exact"] = False
        if registry_fallbacks != totals["fallbacks"]:
            totals["accounting_exact"] = False
        totals["compile_attempts"] = compile_attempts
        return totals

    def run(self) -> WorkloadReport:
        return self._report(self._execute())

    def battery(self) -> dict:
        """Parity + reconciliation, hard-asserted (see module docstring)."""
        totals = self._execute()
        assert totals["parity_mismatches"] == 0, (
            f"compiled/Earley divergence: "
            f"{totals['parity_mismatches']} of {totals['parity_checks']}"
        )
        assert totals["parity_checks"] > 0
        assert totals["budget_exceeded"] > 0, (
            "adversarial closures never exhausted the compile budget -- "
            "the workload is not adversarial enough"
        )
        assert totals["fallbacks"] > 0, (
            "no beyond-horizon fallbacks -- the workload is not "
            "adversarial enough"
        )
        assert totals["registry_budget_exceeded"] == totals["budget_exceeded"]
        assert totals["registry_fallbacks"] == totals["fallbacks"]
        assert totals["accounting_exact"], (
            "per-description counters do not reconcile with the registry"
        )
        assert totals["closure_rules"] > totals["native_rules"], (
            "commutation closure did not expand the grammars"
        )
        return totals
