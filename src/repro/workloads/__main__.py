"""Run a named workload from the shell.

::

    python -m repro.workloads --list
    python -m repro.workloads dynamic_federation --seed 7
    python -m repro.workloads adversarial_ssdl --battery
    python -m repro.workloads zipf_traffic --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.workloads.named import (
    WORKLOADS,
    available_workloads,
    get_workload,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Run a named, seeded, replayable workload scenario.",
    )
    parser.add_argument("workload", nargs="?",
                        help="workload name (see --list)")
    parser.add_argument("--seed", type=int, default=1999,
                        help="run-level seed (default 1999); every random "
                        "choice in the scenario derives from it")
    parser.add_argument("--battery", action="store_true",
                        help="run the correctness battery instead of the "
                        "scenario (exits non-zero on violation)")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--list", action="store_true", dest="list_workloads",
                        help="list available workloads and exit")
    args = parser.parse_args(argv)

    if args.list_workloads:
        for name in available_workloads():
            print(f"{name:20s} {WORKLOADS[name].description}")
        return 0
    if not args.workload:
        parser.print_usage()
        return 2
    try:
        workload = get_workload(args.workload, seed=args.seed)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.battery:
        try:
            accounting = workload.battery()
        except AssertionError as exc:
            print(f"BATTERY FAILED: {exc}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(accounting, indent=2, sort_keys=True,
                             default=str))
        else:
            print(f"battery {workload.name} (seed={workload.seed}): PASS")
            for key in sorted(accounting):
                print(f"  {key} = {accounting[key]}")
        return 0
    report = workload.run()
    print(report.to_json() if args.json else report.format())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
