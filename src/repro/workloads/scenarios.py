"""The paper's motivating scenarios as ready-made workloads.

Each scenario bundles a source, the target query, and the plan shapes
the paper discusses, so examples, tests and the E1/E2 benchmarks all
speak about exactly the same objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conditions.parser import parse_condition
from repro.query import TargetQuery
from repro.source.library import bank, bookstore, car_guide
from repro.source.source import CapabilitySource


@dataclass
class Scenario:
    """A named (source, target query) pair with commentary."""

    name: str
    source: CapabilitySource
    query: TargetQuery
    paper_reference: str
    expectation: str


def bookstore_scenario(n: int = 20000, seed: int = 1999) -> Scenario:
    """Example 1.1: Freud-or-Jung books about dreams.

    The source cannot search two authors at once.  The good plan is two
    author+title queries unioned; the Garlic/CNF plan pulls every book
    matching the title words and filters authors at the mediator.
    """
    condition = parse_condition(
        "(author = 'Sigmund Freud' or author = 'Carl Jung') "
        "and title contains 'dreams'"
    )
    query = TargetQuery(condition, frozenset(["id", "title", "author", "price"]),
                        "bookstore")
    return Scenario(
        name="bookstore (Example 1.1)",
        source=bookstore(n, seed),
        query=query,
        paper_reference="Example 1.1",
        expectation=(
            "GenCompact == DNF two-query plan; CNF transfers every "
            "'dreams' book; DISCO and Naive are infeasible"
        ),
    )


def car_scenario(n: int = 12000, seed: int = 1999) -> Scenario:
    """Example 1.2: midsize-or-compact sedans, Toyotas vs BMWs.

    DNF sends four queries; CNF pushes only style and the size list.
    GenCompact finds the paper's two-query plan (one per make, the size
    list pushed into both).
    """
    condition = parse_condition(
        "style = 'sedan' and (size = 'compact' or size = 'midsize') and "
        "((make = 'Toyota' and price <= 20000) or "
        "(make = 'BMW' and price <= 40000))"
    )
    query = TargetQuery(
        condition, frozenset(["id", "make", "model", "price"]), "car_guide"
    )
    return Scenario(
        name="car guide (Example 1.2)",
        source=car_guide(n, seed),
        query=query,
        paper_reference="Example 1.2",
        expectation=(
            "GenCompact two-query plan beats both the four-query DNF plan "
            "and the style+size-only CNF plan"
        ),
    )


def bank_scenario(n: int = 5000, seed: int = 1999) -> Scenario:
    """Section 4's attribute-export restriction: balance needs the PIN.

    Asking for the balance without supplying the PIN in the condition is
    infeasible for *every* strategy -- the capability machinery must
    prove it rather than produce a plan the source will reject.
    """
    source = bank(n, seed)
    # Use a real (account, PIN) pair from the generated data so the
    # answer is non-empty.
    row = source.relation.rows[42 % len(source.relation)]
    condition = parse_condition(
        f"account_no = {row['account_no']} and pin = {row['pin']}"
    )
    query = TargetQuery(
        condition, frozenset(["account_no", "owner", "balance"]), "bank"
    )
    return Scenario(
        name="bank (Section 4)",
        source=source,
        query=query,
        paper_reference="Section 4",
        expectation="feasible only because the PIN appears in the condition",
    )


def all_scenarios(seed: int = 1999) -> list[Scenario]:
    """The three fixed scenarios with their default sizes."""
    return [bookstore_scenario(seed=seed), car_scenario(seed=seed),
            bank_scenario(seed=seed)]
