"""Target queries: what the user asks the mediator.

A target query is ``SP(C, A, R)`` -- a select-project query with an
unrestricted condition expression over one source (Section 3; the paper
focuses on selection queries, which "form the building blocks of more
complex queries").

``parse_query`` accepts a small SQL-ish syntax::

    SELECT model, year FROM car_guide
    WHERE make = 'BMW' and price <= 40000 and (color = 'red' or color = 'black')
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.conditions.parser import parse_condition
from repro.conditions.tree import TRUE, Condition
from repro.errors import ConditionParseError


@dataclass(frozen=True)
class TargetQuery:
    """``SP(condition, attributes, source)``."""

    condition: Condition
    attributes: frozenset[str]
    source: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", frozenset(self.attributes))

    def to_text(self) -> str:
        cond = "true" if self.condition.is_true else str(self.condition)
        return (
            f"SELECT {', '.join(sorted(self.attributes))} "
            f"FROM {self.source} WHERE {cond}"
        )

    def __str__(self) -> str:
        return self.to_text()


_QUERY_RE = re.compile(
    r"^\s*select\s+(?P<attrs>.+?)\s+from\s+(?P<source>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?:\s+where\s+(?P<where>.+?))?\s*;?\s*$",
    re.IGNORECASE | re.DOTALL,
)


def parse_query(text: str) -> TargetQuery:
    """Parse the SQL-ish target-query syntax."""
    match = _QUERY_RE.match(text)
    if match is None:
        raise ConditionParseError(
            "expected 'SELECT <attrs> FROM <source> [WHERE <condition>]'"
        )
    attrs = frozenset(a.strip() for a in match.group("attrs").split(",") if a.strip())
    if not attrs:
        raise ConditionParseError("the SELECT list is empty")
    where = match.group("where")
    condition = parse_condition(where) if where else TRUE
    return TargetQuery(condition, attrs, match.group("source"))
