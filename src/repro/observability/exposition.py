"""OpenMetrics text exposition for a :class:`MetricsRegistry` snapshot.

A snapshot is only production telemetry once a scraper can read it.
This module renders any registry snapshot in the OpenMetrics text
format (the Prometheus exposition dialect): one ``# TYPE`` header per
metric family, one sample per line, ``# EOF`` at the end -- entirely
stdlib, no client library.

Name mapping, deliberately mechanical so the golden test can pin it:

* dotted registry names become underscore families under the
  ``repro_`` prefix (``executor.retries`` -> ``repro_executor_retries``);
* the per-source namespace ``source.<name>.<metric>`` folds the source
  name into a **label** (``source.cars.queries`` ->
  ``repro_source_queries_total{source="cars"}``), so every source is
  one series of the same family rather than its own family;
* counters gain the ``_total`` suffix; gauges emit their value plus a
  ``_max`` companion for the high-water mark; histograms emit
  cumulative ``_bucket{le="..."}`` series (ending in ``le="+Inf"``),
  ``_sum`` and ``_count``.

Label values are escaped per the spec (backslash, double quote,
newline).  :data:`OPENMETRICS_CONTENT_TYPE` is the content type the
:class:`~repro.observability.server.TelemetryServer` serves under
``/metrics``.
"""

from __future__ import annotations

import re
from typing import Any

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A metric-name-safe identifier (invalid characters -> ``_``)."""
    sanitized = _INVALID_NAME_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """A canonical numeric rendering: integers bare, floats compact."""
    if isinstance(value, bool):  # bools are ints; never wanted here
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def metric_family(name: str) -> tuple[str, dict[str, str]]:
    """Registry name -> (family name, labels).

    ``source.<name>.<metric>`` folds the source into a label; every
    other dotted name maps 1:1 to an underscore family.
    """
    parts = name.split(".")
    if parts[0] == "source" and len(parts) >= 3:
        family = "repro_source_" + "_".join(parts[2:])
        return sanitize_metric_name(family), {"source": parts[1]}
    return sanitize_metric_name("repro_" + "_".join(parts)), {}


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    return f"{name}{_labels_text(labels)} {format_value(value)}"


def render_openmetrics(snapshot: dict[str, dict[str, Any]]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` as OpenMetrics text."""
    families: dict[str, dict[str, Any]] = {}
    for name in sorted(snapshot):
        reading = snapshot[name]
        family, labels = metric_family(name)
        kind = reading["type"]
        entry = families.setdefault(
            family, {"kind": kind, "source_names": [], "rows": []}
        )
        if entry["kind"] != kind:
            # Two registry names folding onto one family with different
            # kinds: keep both observable under distinct families.
            family = sanitize_metric_name(f"{family}_{kind}")
            entry = families.setdefault(
                family, {"kind": kind, "source_names": [], "rows": []}
            )
        entry["source_names"].append(name)
        entry["rows"].append((labels, reading))
    lines: list[str] = []
    for family in sorted(families):
        entry = families[family]
        kind = entry["kind"]
        lines.append(f"# TYPE {family} {kind}")
        lines.append(
            f"# HELP {family} registry metric "
            f"{' '.join(entry['source_names'])}"
        )
        for labels, reading in entry["rows"]:
            if kind == "counter":
                lines.append(_sample(f"{family}_total", labels,
                                     reading["value"]))
            elif kind == "gauge":
                lines.append(_sample(family, labels, reading["value"]))
                lines.append(_sample(f"{family}_max", labels,
                                     reading["max"]))
            elif kind == "histogram":
                for boundary, cumulative in reading.get("buckets", []):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = format_value(boundary)
                    lines.append(_sample(f"{family}_bucket", bucket_labels,
                                         cumulative))
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                lines.append(_sample(f"{family}_bucket", inf_labels,
                                     reading["count"]))
                lines.append(_sample(f"{family}_sum", labels,
                                     reading["sum"]))
                lines.append(_sample(f"{family}_count", labels,
                                     reading["count"]))
            else:  # pragma: no cover - future instrument kinds
                lines.append(_sample(family, labels,
                                     reading.get("value", 0.0)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
