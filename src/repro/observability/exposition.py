"""OpenMetrics text exposition for a :class:`MetricsRegistry` snapshot.

A snapshot is only production telemetry once a scraper can read it.
This module renders any registry snapshot in the OpenMetrics text
format (the Prometheus exposition dialect): one ``# TYPE`` header per
metric family, one sample per line, ``# EOF`` at the end -- entirely
stdlib, no client library.

Name mapping, deliberately mechanical so the golden test can pin it:

* dotted registry names become underscore families under the
  ``repro_`` prefix (``executor.retries`` -> ``repro_executor_retries``);
* the per-source namespace ``source.<name>.<metric>`` folds the source
  name into a **label** (``source.cars.queries`` ->
  ``repro_source_queries_total{source="cars"}``), so every source is
  one series of the same family rather than its own family;
* the per-instance namespace ``instance.<name>.<rest>`` (how a
  federated cluster view keeps one shard's gauges apart -- see
  :mod:`repro.observability.federation`) folds the instance into an
  ``instance=`` label and maps the rest recursively, so
  ``instance.shard-0.source.cars.in_flight`` renders as
  ``repro_source_in_flight{instance="shard-0",source="cars"}``;
* counters gain the ``_total`` suffix; gauges emit their value plus a
  ``_max`` companion for the high-water mark; histograms emit
  cumulative ``_bucket{le="..."}`` series (ending in ``le="+Inf"``),
  ``_sum`` and ``_count``;
* a histogram reading carrying ``exemplars`` (see
  :class:`~repro.observability.metrics.Histogram`) renders each one on
  the bucket line its value falls into, in OpenMetrics exemplar syntax
  -- ``... # {trace_id="<32-hex>"} <value> <timestamp>`` -- so a
  scraper can jump from a latency bucket straight to the trace.

Label values are escaped per the spec (backslash, double quote,
newline).  :data:`OPENMETRICS_CONTENT_TYPE` is the content type the
:class:`~repro.observability.server.TelemetryServer` serves under
``/metrics``.
"""

from __future__ import annotations

import re
from typing import Any

OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A metric-name-safe identifier (invalid characters -> ``_``)."""
    sanitized = _INVALID_NAME_CHARS.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """A canonical numeric rendering: integers bare, floats compact."""
    if isinstance(value, bool):  # bools are ints; never wanted here
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def metric_family(name: str) -> tuple[str, dict[str, str]]:
    """Registry name -> (family name, labels).

    ``source.<name>.<metric>`` folds the source into a label, and
    ``instance.<name>.<rest>`` folds a federation instance into a label
    before mapping the rest recursively; every other dotted name maps
    1:1 to an underscore family.
    """
    parts = name.split(".")
    if parts[0] == "instance" and len(parts) >= 3:
        family, labels = metric_family(".".join(parts[2:]))
        return family, {"instance": parts[1], **labels}
    if parts[0] == "source" and len(parts) >= 3:
        family = "repro_source_" + "_".join(parts[2:])
        return sanitize_metric_name(family), {"source": parts[1]}
    return sanitize_metric_name("repro_" + "_".join(parts)), {}


def _labels_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _sample(name: str, labels: dict[str, str], value: float) -> str:
    return f"{name}{_labels_text(labels)} {format_value(value)}"


def format_trace_id(trace_id: int) -> str:
    """A trace id in its wire form (the 32-hex ``traceparent`` field),
    so an exemplar's ``trace_id`` label greps against propagated
    headers and exported span files alike."""
    return f"{int(trace_id):032x}"


def _exemplars_by_bucket(reading: dict[str, Any]) -> dict[Any, list]:
    """Bucket key (boundary or ``"+Inf"``) -> the largest exemplar
    whose value falls in that bucket (OpenMetrics allows at most one
    exemplar per bucket line)."""
    boundaries = [boundary for boundary, _ in reading.get("buckets", [])]
    chosen: dict[Any, list] = {}
    for exemplar in reading.get("exemplars") or []:
        value = exemplar[0]
        key: Any = "+Inf"
        for boundary in boundaries:
            if value <= boundary:
                key = boundary
                break
        best = chosen.get(key)
        if best is None or value > best[0]:
            chosen[key] = exemplar
    return chosen


def _exemplar_text(exemplar: list) -> str:
    value, trace_id, timestamp = exemplar
    return (
        f' # {{trace_id="{format_trace_id(trace_id)}"}} '
        f"{format_value(value)} {format_value(timestamp)}"
    )


def render_openmetrics(snapshot: dict[str, dict[str, Any]]) -> str:
    """Render a ``MetricsRegistry.snapshot()`` as OpenMetrics text."""
    families: dict[str, dict[str, Any]] = {}
    for name in sorted(snapshot):
        reading = snapshot[name]
        family, labels = metric_family(name)
        kind = reading["type"]
        entry = families.setdefault(
            family, {"kind": kind, "source_names": [], "rows": []}
        )
        if entry["kind"] != kind:
            # Two registry names folding onto one family with different
            # kinds: keep both observable under distinct families.
            family = sanitize_metric_name(f"{family}_{kind}")
            entry = families.setdefault(
                family, {"kind": kind, "source_names": [], "rows": []}
            )
        entry["source_names"].append(name)
        entry["rows"].append((labels, reading))
    lines: list[str] = []
    for family in sorted(families):
        entry = families[family]
        kind = entry["kind"]
        lines.append(f"# TYPE {family} {kind}")
        lines.append(
            f"# HELP {family} registry metric "
            f"{' '.join(entry['source_names'])}"
        )
        for labels, reading in entry["rows"]:
            if kind == "counter":
                lines.append(_sample(f"{family}_total", labels,
                                     reading["value"]))
            elif kind == "gauge":
                lines.append(_sample(family, labels, reading["value"]))
                lines.append(_sample(f"{family}_max", labels,
                                     reading["max"]))
            elif kind == "histogram":
                exemplars = _exemplars_by_bucket(reading)
                for boundary, cumulative in reading.get("buckets", []):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = format_value(boundary)
                    line = _sample(f"{family}_bucket", bucket_labels,
                                   cumulative)
                    if boundary in exemplars:
                        line += _exemplar_text(exemplars[boundary])
                    lines.append(line)
                inf_labels = dict(labels)
                inf_labels["le"] = "+Inf"
                line = _sample(f"{family}_bucket", inf_labels,
                               reading["count"])
                if "+Inf" in exemplars:
                    line += _exemplar_text(exemplars["+Inf"])
                lines.append(line)
                lines.append(_sample(f"{family}_sum", labels,
                                     reading["sum"]))
                lines.append(_sample(f"{family}_count", labels,
                                     reading["count"]))
            else:  # pragma: no cover - future instrument kinds
                lines.append(_sample(family, labels,
                                     reading.get("value", 0.0)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
