"""The telemetry server: ``/metrics``, ``/health`` and ``/snapshot``.

Opt-in, stdlib-only exposition over HTTP so a scraper, a load balancer
probe or ``python -m repro.dash`` can watch a serving mediator from
outside the process.  Built on :class:`http.server.ThreadingHTTPServer`
running on a daemon thread -- no framework, no dependency, start/stop
in a line::

    server = TelemetryServer(mediator=mediator)
    server.start()            # or: with TelemetryServer(...) as server:
    ...                       # http://127.0.0.1:<server.port>/metrics
    server.stop()

Endpoints:

* ``/metrics`` -- the registry snapshot in OpenMetrics text (see
  :mod:`repro.observability.exposition`);
* ``/health`` -- a JSON liveness/readiness document: catalog version,
  admission in-flight / shed rate, slow-query counts and the SLO
  status.  Answers **200** while healthy and **503** once the SLO
  error budget is exhausted, so any HTTP prober can act on it;
* ``/snapshot`` -- the raw registry snapshot as JSON (the dashboard's
  data feed; lossless, buckets included).

The server binds ``port=0`` by default (ephemeral: read ``.port``
after :meth:`start`), and serves each request from a fresh thread so a
slow scraper cannot stall a probe.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.observability.exposition import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from repro.observability.metrics import MetricsRegistry, get_metrics


def _json_safe(value: Any) -> Any:
    """Strip non-JSON values (inf/nan) a health document must not leak."""
    if isinstance(value, float) and (value != value or value in (
        float("inf"), float("-inf")
    )):
        return repr(value)
    return value


class TelemetryServer:
    """Serves the registry (and a mediator's health) over HTTP."""

    def __init__(
        self,
        mediator=None,
        registry: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        instance: str | None = None,
    ):
        """``mediator`` is optional: without one, ``/health`` reports
        only the process-level status and is always ``ok``.  The
        ``registry`` defaults to the process-wide one *at request
        time*, so a scoped ``use_metrics`` block is respected.
        ``instance`` names this server inside a federated cluster
        view (see :mod:`repro.observability.federation`); unset, the
        scraper falls back to ``host:port``."""
        self.mediator = mediator
        self._registry = registry
        self.instance = instance
        self.host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_metrics()

    @property
    def port(self) -> int:
        """The bound port (valid once :meth:`start` returned)."""
        if self._httpd is None:
            raise RuntimeError("the telemetry server is not running")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """The ``/health`` document (also usable in-process)."""
        document: dict[str, Any] = {"status": "ok"}
        if self.instance is not None:
            document["instance"] = self.instance
        mediator = self.mediator
        if mediator is not None:
            document["catalog_version"] = mediator.catalog_version
            document["sources"] = len(mediator.catalog)
            admission = getattr(mediator, "admission", None)
            if admission is not None:
                admitted, shed = admission.admitted, admission.shed
                outcomes = admitted + shed
                document["admission"] = {
                    "in_flight": admission.in_flight,
                    "max_in_flight": admission.max_in_flight,
                    "admitted": admitted,
                    "shed": shed,
                    "shed_rate": shed / outcomes if outcomes else 0.0,
                }
            slow_queries = getattr(mediator, "slow_queries", None)
            if slow_queries is not None:
                document["slow_queries"] = {
                    "recorded": slow_queries.recorded,
                    "retained": len(slow_queries),
                    "evicted": slow_queries.evicted,
                }
            slo = getattr(mediator, "slo", None)
            if slo is not None:
                status = slo.status()
                document["slo"] = {
                    key: _json_safe(value) for key, value in status.items()
                }
                document["status"] = status["status"]
        return document

    # ------------------------------------------------------------------
    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            raise RuntimeError("the telemetry server is already running")
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr
                pass

            def _send(self, code: int, content_type: str,
                      body: bytes) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - stdlib handler name
                path = self.path.split("?", 1)[0]
                try:
                    if path == "/metrics":
                        body = render_openmetrics(
                            server.registry.snapshot()
                        ).encode("utf-8")
                        self._send(200, OPENMETRICS_CONTENT_TYPE, body)
                    elif path == "/health":
                        document = server.health()
                        code = 200 if document["status"] == "ok" else 503
                        body = json.dumps(
                            document, sort_keys=True
                        ).encode("utf-8")
                        self._send(code, "application/json", body)
                    elif path == "/snapshot":
                        body = json.dumps(
                            server.registry.snapshot(), sort_keys=True
                        ).encode("utf-8")
                        self._send(200, "application/json", body)
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   b"not found\n")
                except BrokenPipeError:  # scraper went away mid-write
                    pass

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="telemetry-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
