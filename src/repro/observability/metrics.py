"""A registry of named counters, gauges and histograms.

Before this module the repository's runtime accounting was scattered:
:class:`~repro.source.metering.QueryMeter` counted per-source traffic,
``_ExecutionContext`` counted attempts/retries/failovers inside the
executor, and ``CapabilitySource.max_in_flight`` tracked the
concurrency watermark -- three bespoke mechanisms with three snapshot
conventions.  The :class:`MetricsRegistry` is the one place such
numbers accumulate: instrumented code publishes into the process-wide
registry (:func:`get_metrics`), and every instrument supports the same
``snapshot()`` / ``reset()`` discipline.  The legacy carriers still
work (tests and reports read them), but they now *feed* the registry
rather than being the only record.

Three instrument kinds, deliberately minimal and dependency-free:

* :class:`Counter` -- monotonically increasing count (``inc``);
* :class:`Gauge` -- last-write value plus a high-water mark
  (``set`` / ``track_max``), e.g. in-flight calls per source;
* :class:`Histogram` -- count/sum/min/max **plus fixed-boundary
  cumulative buckets**, e.g. queue-wait seconds under a source's
  concurrency semaphore.  Buckets make the histogram a streaming
  quantile estimator: :meth:`Histogram.quantile` (and
  :func:`quantile_from_snapshot` on an exported reading) interpolate
  p50/p95/p99 without retaining samples, which is what the load
  harness, the execution report and the ``/metrics`` exposition all
  share -- one estimator, so they can never disagree.

Histograms can additionally carry **exemplars** (``exemplar_slots > 0``):
the ``(trace_id, value)`` of the most extreme recent observations, so a
p99 spike on a dashboard links *directly* to the trace that caused it.
Recording is opt-in per call site -- ``observe(value, trace_id=...)`` --
and costs one comparison when the value is unremarkable, so the hot
path stays hot.

All instruments are thread-safe (one lock per instrument); creating an
instrument is get-or-create and idempotent, so call sites just say
``get_metrics().counter("executor.retries").inc()``.
:meth:`MetricsRegistry.snapshot` additionally acquires every
instrument's lock in one registry-wide pass, so the counters and
histograms inside one snapshot are mutually consistent even while 16
threads keep publishing.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

#: Default histogram boundaries (seconds): exponential from 0.5 ms to
#: 60 s, the useful range for source calls and end-to-end asks.  The
#: final implicit bucket is +Inf (the ``count`` itself).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self.value = 0.0


class Gauge:
    """A last-write value with a high-water mark."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value

    def track_max(self, value: float) -> None:
        """Raise the high-water mark without moving the current value."""
        with self._lock:
            if value > self.max_value:
                self.max_value = value

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value,
                "max": self.max_value}

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self.value = 0.0
        self.max_value = 0.0


@dataclass(frozen=True)
class Exemplar:
    """One extreme observation's identity: its value, the trace that
    caused it, and when it happened (unix seconds)."""

    value: float
    trace_id: int
    timestamp: float


class Histogram:
    """Count / sum / min / max plus fixed cumulative buckets.

    ``boundaries`` are the finite upper bounds (``le`` semantics: an
    observation equal to a boundary lands in that bucket); one implicit
    ``+Inf`` bucket catches the overflow, so ``count`` is always the
    last cumulative value.  From the buckets, :meth:`quantile` returns
    a streaming estimate -- linear interpolation inside the target
    bucket, clamped to the observed min/max -- without the histogram
    ever retaining a sample.

    With ``exemplar_slots > 0`` the histogram additionally keeps the
    :class:`Exemplar` of the largest recent observations that arrived
    with a ``trace_id``: a new observation takes a free slot, or evicts
    the smallest retained exemplar it exceeds.  The slow-query log and
    the OpenMetrics exposition surface them, so "what was that p99
    spike" resolves to a concrete trace instead of a bucket count.
    """

    __slots__ = ("name", "count", "total", "min", "max", "boundaries",
                 "bucket_counts", "exemplar_slots", "exemplars", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] | None = None,
                 exemplar_slots: int = 0):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        boundaries = tuple(sorted(set(
            DEFAULT_BUCKETS if buckets is None else buckets
        )))
        if not boundaries:
            raise ValueError("a histogram needs at least one boundary")
        self.boundaries = boundaries
        #: Non-cumulative per-bucket counts; index len(boundaries) is +Inf.
        self.bucket_counts = [0] * (len(boundaries) + 1)
        if exemplar_slots < 0:
            raise ValueError("exemplar_slots must be >= 0")
        self.exemplar_slots = exemplar_slots
        #: Retained extreme observations, unordered (few slots).
        self.exemplars: list[Exemplar] = []
        self._lock = threading.Lock()

    def observe(self, value: float, trace_id: int | None = None) -> bool:
        """Record one observation; returns True when it landed in an
        exemplar slot (the caller may then pin the trace so the
        exported exemplar stays resolvable)."""
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self.count += 1
            self.total += value
            self.bucket_counts[index] += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if trace_id is None or not self.exemplar_slots:
                return False
            return self._record_exemplar_locked(value, trace_id)

    def _record_exemplar_locked(self, value: float, trace_id: int) -> bool:
        if len(self.exemplars) < self.exemplar_slots:
            self.exemplars.append(Exemplar(value, trace_id, time.time()))
            return True
        smallest = min(range(len(self.exemplars)),
                       key=lambda i: self.exemplars[i].value)
        if value >= self.exemplars[smallest].value:
            # Ties refresh: same-magnitude spikes keep the *recent* trace.
            self.exemplars[smallest] = Exemplar(value, trace_id,
                                                time.time())
            return True
        return False

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """A streaming estimate of the ``q`` quantile (``q`` in [0, 1]).

        Defined for every histogram state: an empty (or freshly reset)
        histogram answers 0.0, a single-observation histogram answers
        exactly that observation (the min/max clamp pins it), never an
        exception -- the profilers call this on live histograms that may
        not have seen a sample yet.
        """
        return quantile_from_snapshot(self.snapshot(), q)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for boundary, bucket in zip(self.boundaries, self.bucket_counts):
            running += bucket
            cumulative.append([boundary, running])
        reading = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else 0.0,
            "buckets": cumulative,
        }
        if self.exemplar_slots:
            # Only exemplar-carrying histograms grow the key, so every
            # existing snapshot (and its golden) is byte-identical.
            reading["exemplars"] = [
                [e.value, e.trace_id, e.timestamp]
                for e in sorted(self.exemplars, key=lambda e: -e.value)
            ]
        return reading

    def reset(self) -> None:
        with self._lock:
            self._reset_locked()

    def _reset_locked(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None
        self.bucket_counts = [0] * len(self.bucket_counts)
        self.exemplars = []


def quantile_from_snapshot(reading: dict[str, Any], q: float) -> float:
    """The ``q`` quantile estimated from a histogram ``snapshot()``.

    Works on any exported reading (a ``/snapshot`` JSON object, a
    :class:`LoadReport`'s latency snapshot, ...), so every consumer of
    the same snapshot computes the *same* p50/p95/p99.  Nearest-rank
    bucket selection with linear interpolation inside the bucket,
    clamped to the observed min/max.

    Total on its domain: an empty reading (count 0 or missing) answers
    0.0 and a single-observation reading answers the observation itself
    -- the clamp collapses the interpolation to the point min == max.
    Only a ``q`` outside [0, 1] raises.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = reading.get("count") or 0
    if count <= 0:
        return 0.0
    observed_min = reading.get("min")
    if observed_min is None:
        observed_min = 0.0
    observed_max = reading.get("max")
    if observed_max is None:
        observed_max = observed_min
    rank = q * count
    previous_bound = observed_min
    previous_cumulative = 0
    for boundary, cumulative in reading.get("buckets", []):
        if cumulative >= rank:
            if cumulative == previous_cumulative:
                estimate = previous_bound
            else:
                share = (rank - previous_cumulative) / (
                    cumulative - previous_cumulative
                )
                estimate = previous_bound + share * max(
                    boundary - previous_bound, 0.0
                )
            return min(max(estimate, observed_min), observed_max)
        previous_bound = boundary
        previous_cumulative = cumulative
    # The rank lives in the +Inf bucket: all we know is (last bound, max].
    return observed_max


class MetricsRegistry:
    """Named instruments with consistent snapshot/reset semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  buckets: Sequence[float] | None = None,
                  exemplar_slots: int = 0) -> Histogram:
        """Get-or-create; ``buckets`` and ``exemplar_slots`` only apply
        on first creation (an existing histogram keeps the boundaries
        and slots it was born with)."""
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets=buckets,
                                       exemplar_slots=exemplar_slots)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not Histogram"
            )
        return instrument

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A mutually consistent name -> reading map of every instrument.

        One registry-wide lock pass: every instrument's lock is
        acquired *before* the first reading is taken, so a publisher
        that bumps two instruments back-to-back (say a counter and a
        histogram per request) can never appear half-applied inside one
        snapshot.  Publishers only ever hold their own instrument's
        lock, so gathering them all here cannot deadlock.
        """
        with self._lock:
            instruments = sorted(self._instruments.values(),
                                 key=lambda i: i.name)
            held = [instrument._lock for instrument in instruments]
            for lock in held:
                lock.acquire()
            try:
                return {instrument.name: instrument._snapshot_locked()
                        for instrument in instruments}
            finally:
                for lock in reversed(held):
                    lock.release()

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered).

        Same one-pass locking discipline as :meth:`snapshot`: every
        instrument's lock is acquired before the first zeroing, so a
        concurrent snapshot sees either the pre-reset registry or the
        post-reset one -- never a half-reset mix (a profiler resetting
        between benchmark phases must not tear a scraper's view).
        """
        with self._lock:
            instruments = sorted(self._instruments.values(),
                                 key=lambda i: i.name)
            held = [instrument._lock for instrument in instruments]
            for lock in held:
                lock.acquire()
            try:
                for instrument in instruments:
                    instrument._reset_locked()
            finally:
                for lock in reversed(held):
                    lock.release()

    def format(self) -> str:
        """A small human-readable dump (the trace CLI's --metrics view)."""
        lines = []
        for name, reading in self.snapshot().items():
            kind = reading.pop("type")
            if kind == "histogram":
                for q, label in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
                    reading[label] = quantile_from_snapshot(reading, q)
                reading.pop("buckets")
                exemplars = reading.pop("exemplars", None)
                if exemplars:
                    reading["exemplars"] = len(exemplars)
            detail = ", ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in reading.items() if v is not None
            )
            lines.append(f"{name:<44} {kind:<9} {detail}")
        return "\n".join(lines)


_default_metrics = MetricsRegistry()
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry instrumented code publishes into."""
    return _default_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _default_metrics
    with _default_lock:
        previous = _default_metrics
        _default_metrics = registry
        return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_metrics`: install for the block, then restore."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
