"""A registry of named counters, gauges and histograms.

Before this module the repository's runtime accounting was scattered:
:class:`~repro.source.metering.QueryMeter` counted per-source traffic,
``_ExecutionContext`` counted attempts/retries/failovers inside the
executor, and ``CapabilitySource.max_in_flight`` tracked the
concurrency watermark -- three bespoke mechanisms with three snapshot
conventions.  The :class:`MetricsRegistry` is the one place such
numbers accumulate: instrumented code publishes into the process-wide
registry (:func:`get_metrics`), and every instrument supports the same
``snapshot()`` / ``reset()`` discipline.  The legacy carriers still
work (tests and reports read them), but they now *feed* the registry
rather than being the only record.

Three instrument kinds, deliberately minimal and dependency-free:

* :class:`Counter` -- monotonically increasing count (``inc``);
* :class:`Gauge` -- last-write value plus a high-water mark
  (``set`` / ``track_max``), e.g. in-flight calls per source;
* :class:`Histogram` -- count/sum/min/max of observations, e.g.
  queue-wait seconds under a source's concurrency semaphore.

All instruments are thread-safe (one lock per instrument); creating an
instrument is get-or-create and idempotent, so call sites just say
``get_metrics().counter("executor.retries").inc()``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Gauge:
    """A last-write value with a high-water mark."""

    __slots__ = ("name", "value", "max_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value

    def track_max(self, value: float) -> None:
        """Raise the high-water mark without moving the current value."""
        with self._lock:
            if value > self.max_value:
                self.max_value = value

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {"type": "gauge", "value": self.value,
                    "max": self.max_value}

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self.max_value = 0.0


class Histogram:
    """Count / sum / min / max of observed values."""

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count if self.count else 0.0,
            }

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None


class MetricsRegistry:
    """Named instruments with consistent snapshot/reset semantics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
                return instrument
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A consistent name -> reading map of every instrument."""
        with self._lock:
            instruments = list(self._instruments.values())
        return {i.name: i.snapshot() for i in sorted(instruments,
                                                     key=lambda i: i.name)}

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def format(self) -> str:
        """A small human-readable dump (the trace CLI's --metrics view)."""
        lines = []
        for name, reading in self.snapshot().items():
            kind = reading.pop("type")
            detail = ", ".join(
                f"{k}={v:.6g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in reading.items() if v is not None
            )
            lines.append(f"{name:<44} {kind:<9} {detail}")
        return "\n".join(lines)


_default_metrics = MetricsRegistry()
_default_lock = threading.Lock()


def get_metrics() -> MetricsRegistry:
    """The process-wide registry instrumented code publishes into."""
    return _default_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` globally; returns the previous one."""
    global _default_metrics
    with _default_lock:
        previous = _default_metrics
        _default_metrics = registry
        return previous


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped :func:`set_metrics`: install for the block, then restore."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
