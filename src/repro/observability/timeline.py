"""Human-readable trace rendering: an indented ASCII timeline/flame view.

One screen answers "why is this query slow / why was this plan
picked": every span on its own line, indented by tree depth, with its
duration, a proportional bar positioned on the trace's time axis, the
span's attributes (Q, pruning-rule fires, attempts, retries, backoff,
worker slot, ...) and an ``!`` marker plus error text for failed
spans.  Span *events* (``plan.cache_hit``, ``retry``,
``admission.shed``, ...) render as ``·`` sub-lines under their span
with their offset from the trace start.  Used by
``Mediator.explain(trace=True)`` and the ``python -m repro.trace`` CLI.
"""

from __future__ import annotations

from typing import Iterable

from repro.observability.trace import STATUS_ERROR, Span
from repro.observability.export import children_of

#: Attributes too bulky for the one-line view are elided beyond this.
_MAX_VALUE_CHARS = 40


def _format_value(value: object) -> str:
    if isinstance(value, float):
        text = f"{value:.6g}"
    else:
        text = str(value)
    if len(text) > _MAX_VALUE_CHARS:
        text = text[: _MAX_VALUE_CHARS - 1] + "…"
    return text


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = [f"{key}={_format_value(value)}"
             for key, value in span.attributes.items()]
    return "  " + " ".join(parts)


def _bar(span: Span, t0: float, total: float, width: int) -> str:
    """The span's extent on the shared time axis, as a character bar.

    A zero-duration span (instantaneous, or never closed) still gets a
    visible ``▏`` marker at its position instead of an empty bar."""
    if total <= 0.0:
        return "·" * width
    begin = int((span.start - t0) / total * width)
    begin = min(begin, width - 1)
    if span.duration <= 0.0:
        return " " * begin + "▏" + " " * (width - begin - 1)
    length = max(1, round(span.duration / total * width))
    length = min(length, width - begin)
    return " " * begin + "█" * length + " " * (width - begin - length)


def render_timeline(spans: Iterable[Span], width: int = 32) -> str:
    """Render finished spans as an indented per-trace timeline."""
    spans = list(spans)
    if not spans:
        return "(no spans recorded)"
    by_parent = children_of(spans)
    known = {span.span_id for span in spans}
    # Roots: true roots plus orphans (parent finished elsewhere/never).
    roots = [
        span for span in spans
        if span.parent_id is None or span.parent_id not in known
    ]
    roots.sort(key=lambda s: (s.start, s.span_id))
    lines: list[str] = []
    for root in roots:
        t0 = root.start
        total = max(
            (s.end or s.start) for s in _subtree(root, by_parent)
        ) - t0
        lines.append(
            f"trace {root.trace_id} — {root.name} "
            f"({total * 1000:.2f} ms, {len(_subtree(root, by_parent))} spans)"
        )
        _render(root, by_parent, depth=0, t0=t0, total=total, width=width,
                lines=lines)
    return "\n".join(lines)


def _subtree(root: Span, by_parent: dict) -> list[Span]:
    collected = [root]
    for child in by_parent.get(root.span_id, []):
        collected.extend(_subtree(child, by_parent))
    return collected


def _render(span: Span, by_parent: dict, depth: int, t0: float,
            total: float, width: int, lines: list[str]) -> None:
    indent = "  " * depth
    marker = "!" if span.status == STATUS_ERROR else " "
    label = f"{indent}{span.name}"
    line = (
        f"{marker} {label:<38} {span.duration * 1000:>9.3f} ms "
        f"|{_bar(span, t0, total, width)}|{_format_attributes(span)}"
    )
    if span.error is not None:
        line += f"  error={_format_value(span.error)}"
    lines.append(line)
    # Events may be appended out of order under cross-thread handoff;
    # the rendered sub-lines follow the time axis, not append order.
    for event in sorted(span.events, key=lambda e: e.timestamp):
        lines.append(_render_event(event, span, depth, t0))
    for child in by_parent.get(span.span_id, []):
        _render(child, by_parent, depth + 1, t0, total, width, lines)


def _render_event(event, span: Span, depth: int, t0: float) -> str:
    """One span event as an indented sub-line: ``· +offset name attrs``.

    Events are point-in-time annotations (``plan.cache_hit``,
    ``retry``, ``admission.shed``, ...) -- they get no bar, just their
    offset from the trace start and their structured attributes.
    """
    indent = "  " * depth
    attrs = ""
    if event.attributes:
        attrs = "  " + " ".join(
            f"{key}={_format_value(value)}"
            for key, value in event.attributes.items()
        )
    return (
        f"  {indent}  · +{(event.timestamp - t0) * 1000:.3f} ms "
        f"{event.name}{attrs}"
    )
