"""The wide-event request log: one structured event per ``ask``.

Metrics aggregate and traces sample; the question "what exactly
happened to *that* request" needs a third signal -- one **wide event**
per :meth:`~repro.mediator.mediator.Mediator.ask`, carrying everything
the mediator knew about it on a single line: the trace id (the join
key against exported spans and exemplars), the canonical plan
fingerprint, how planning resolved (plan-cache hit / template hit /
miss), what execution did (per-source query/tuple tallies, coalesced
and batched hits), the measured latency, and how it ended (``ok``,
shed by admission control, or the error class).

:class:`AskEvent` is the event; :class:`EventLog` is the sink -- a
bounded thread-safe ring (like the slow-query log, but for *every*
ask, not just breaches) with an optional append-only JSONL file so
events survive the process.  One event is one JSON object on one line:
``grep`` for a trace id, ``jq`` over outcomes, or reload with
:func:`read_events` -- no collector, no schema registry.

The mediator emits these itself when constructed with
``event_log_entries``/``event_log_path``; ``python -m repro.trace
--events`` prints the ring of a demo run.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass
class AskEvent:
    """Everything the mediator knew about one ask, denormalized."""

    query: str
    source: str
    outcome: str  # "ok" | "shed" | an error class name
    duration_seconds: float
    #: 32-hex trace id (empty when no tracer was recording).
    trace_id: str = ""
    #: Canonical plan fingerprint (see :func:`plan_fingerprint`).
    fingerprint: str = ""
    planner: str | None = None
    #: How planning resolved: "hit" | "template_hit" | "miss" | "".
    plan_cache: str = ""
    #: Source name -> [queries, tuples] delta of this execution.
    per_source: dict[str, list[int]] = field(default_factory=dict)
    answers: int = 0
    coalesced_hits: int = 0
    batched_hits: int = 0
    error: str | None = None
    wall_time: float = field(default_factory=time.time)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AskEvent":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def format(self) -> str:
        """One greppable line (the ``--events`` CLI view)."""
        parts = [
            f"[{self.fingerprint or '-'}]",
            f"{self.duration_seconds * 1000:.2f} ms",
            self.outcome,
        ]
        if self.trace_id:
            parts.append(f"trace={self.trace_id}")
        if self.plan_cache:
            parts.append(f"plan_cache={self.plan_cache}")
        if self.coalesced_hits:
            parts.append(f"coalesced={self.coalesced_hits}")
        if self.batched_hits:
            parts.append(f"batched={self.batched_hits}")
        parts.append(f"answers={self.answers}")
        if self.error:
            parts.append(f"error={self.error}")
        parts.append(self.query)
        return " ".join(parts)


class EventLog:
    """A bounded ring of :class:`AskEvent` with an optional file sink.

    Thread-safe; ``append`` is the mediator's hot-path call, so the
    ring insert happens under one short lock and the optional JSONL
    write reuses a single line-buffered handle.  Past ``capacity`` the
    oldest in-memory event is evicted (counted) -- the file, when
    configured, keeps everything.
    """

    def __init__(self, capacity: int = 256,
                 path: str | Path | None = None):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._ring: deque[AskEvent] = deque(maxlen=capacity)
        self._sink = (
            self.path.open("a", encoding="utf-8")
            if self.path is not None else None
        )
        self.recorded = 0
        self.evicted = 0

    def append(self, event: AskEvent) -> None:
        line = (
            json.dumps(event.to_dict(), sort_keys=True)
            if self._sink is not None else None
        )
        with self._lock:
            if len(self._ring) == self.capacity:
                self.evicted += 1
            self._ring.append(event)
            self.recorded += 1
            if self._sink is not None:
                self._sink.write(line + "\n")
                self._sink.flush()

    def events(self) -> list[AskEvent]:
        """Oldest-first snapshot of the retained ring."""
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._ring),
                "recorded": self.recorded,
                "evicted": self.evicted,
                "path": str(self.path) if self.path else None,
            }

    def format(self) -> str:
        """The ring as text, oldest first, with a one-line header."""
        events = self.events()
        stats = self.stats()
        header = (
            f"ask events: {stats['retained']} retained of "
            f"{stats['recorded']} recorded ({stats['evicted']} evicted)"
        )
        if stats["path"]:
            header += f" -> {stats['path']}"
        return "\n".join([header] + [event.format() for event in events])

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.recorded = 0
            self.evicted = 0

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: str | Path) -> Iterator[AskEvent]:
    """Reload a JSONL event file written by an :class:`EventLog`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield AskEvent.from_dict(json.loads(line))
