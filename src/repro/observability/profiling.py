"""Continuous profiling: phase wall/CPU aggregation and lock contention.

The repository's perf claims (X8-X15) are about *where time goes* --
planning vs. checking vs. source round-trips -- and about hot locks
staying cheap under concurrency.  This module turns the existing
telemetry into a continuous profiler with two halves, both **off by
default** and both free on the disabled path:

* :class:`PhaseProfiler` -- a span exporter that folds every finished
  :class:`~repro.observability.trace.Span` into a per-**phase**
  aggregate (plan / rewrite / check-adjacent planner phases / execute /
  source.service, see :func:`phase_category`): span count, wall
  seconds, and -- because :meth:`install` flips the tracer's
  ``record_cpu`` switch -- thread-CPU seconds, which separates
  "computing" phases from "waiting on the network" phases.  Aggregates
  live both on the profiler (:meth:`PhaseProfiler.snapshot` /
  :meth:`top`) and in the :class:`MetricsRegistry` as
  ``profile.phase.<category>.wall_seconds`` histograms plus
  ``.cpu_seconds`` counters, so ``/snapshot``, ``/metrics``
  (``repro_profile_*`` families) and ``python -m repro.dash`` see them
  with no extra plumbing.

* :class:`ContentionProfiler` -- swaps the hot locks (the
  :class:`~repro.serving.plan_cache.PlanCache` LRU lock, every
  source description's Check-cache lock, the
  :class:`~repro.observability.metrics.MetricsRegistry` registry lock,
  the :class:`~repro.serving.admission.AdmissionController` counter
  lock) for :class:`ProfiledLock` wrappers that time each
  ``acquire()`` wait into a ``profile.lock.<site>.wait_seconds``
  histogram (+ a ``.timeouts`` counter for timed acquires that gave
  up).  :meth:`ContentionProfiler.uninstall` restores the original
  locks, so profiling is strictly opt-in: an uninstrumented mediator
  runs the exact same lock objects as before this module existed.

Both profilers publish through pre-resolved instrument references --
never a registry name lookup on the hot path -- and every accounting
structure is guarded, so 16-thread load reconciles exactly (the X15
benchmark pins the disabled-path overhead at NullTracer levels).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    get_metrics,
)
from repro.observability.trace import Span, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mediator.mediator import Mediator

#: Wait/phase histogram boundaries (seconds): finer than the request
#: -scale DEFAULT_BUCKETS because phases and lock waits live in the
#: microsecond-to-millisecond range.
PROFILE_BUCKETS: tuple[float, ...] = (
    1e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
)

#: Span-name -> phase category.  Exact names first; anything unknown
#: falls back to its first dotted segment so new spans are never lost.
_PHASE_BY_NAME = {
    "mediator.ask": "ask",
    "mediator.plan": "plan",
    "planner.plan": "plan",
    "planner.rewrite": "rewrite",
    "planner.mark": "mark",
    "planner.generate": "generate",
    "planner.cost": "cost",
    "mediator.execute": "execute",
    "executor.source_call": "execute",
    "source.service": "source.service",
}


def phase_category(span_name: str) -> str:
    """The phase a span aggregates under (``plan``, ``rewrite``,
    ``execute``, ``source.service``, ...)."""
    category = _PHASE_BY_NAME.get(span_name)
    if category is not None:
        return category
    return span_name.split(".", 1)[0] if span_name else "other"


@dataclass
class PhaseStat:
    """One phase's running aggregate (a value object; the profiler owns
    the locking)."""

    spans: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0

    @property
    def wall_mean(self) -> float:
        return self.wall_seconds / self.spans if self.spans else 0.0

    @property
    def cpu_share(self) -> float:
        """CPU seconds per wall second: ~1.0 means compute-bound, ~0.0
        means the phase was waiting (network, locks, sleeps)."""
        return self.cpu_seconds / self.wall_seconds if self.wall_seconds \
            else 0.0


class PhaseProfiler:
    """Aggregates finished spans into per-phase wall/CPU totals.

    Construction costs nothing and instruments nothing.  :meth:`install`
    attaches the profiler to a recording tracer (as an exporter) and
    turns that tracer's CPU clocks on; :meth:`detach` undoes both.  A
    profiler that was never installed leaves every hot path exactly as
    it was -- the off-by-default contract X15 measures.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 metrics_prefix: str = "profile.phase"):
        self._registry = registry
        self.metrics_prefix = metrics_prefix
        self._lock = threading.Lock()
        self._phases: dict[str, PhaseStat] = {}
        #: Pre-resolved (histogram, counter) per category -- publishing
        #: a span never takes the registry lock.
        self._instruments: dict[str, tuple[Histogram, Counter]] = {}
        self._tracer: Tracer | None = None
        self._saved_record_cpu = False

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_metrics()

    @property
    def installed(self) -> bool:
        return self._tracer is not None

    # ------------------------------------------------------------------
    def install(self, tracer: Tracer) -> "PhaseProfiler":
        """Attach to ``tracer``: export every finished span, record CPU.

        Raises on a :class:`NullTracer` (it never finishes spans) and on
        double-install; returns ``self`` for chaining.
        """
        if self._tracer is not None:
            raise RuntimeError("PhaseProfiler is already installed")
        tracer.add_exporter(self.export)  # NullTracer raises here
        self._tracer = tracer
        self._saved_record_cpu = tracer.record_cpu
        tracer.record_cpu = True
        return self

    def detach(self) -> None:
        """Stop exporting and restore the tracer's CPU switch."""
        if self._tracer is None:
            return
        self._tracer.remove_exporter(self.export)
        self._tracer.record_cpu = self._saved_record_cpu
        self._tracer = None

    # ------------------------------------------------------------------
    def export(self, span: Span) -> None:
        """Fold one finished span into its phase (exporter hook)."""
        category = phase_category(span.name)
        wall = span.duration
        cpu = span.cpu_duration
        with self._lock:
            stat = self._phases.get(category)
            if stat is None:
                stat = self._phases[category] = PhaseStat()
            stat.spans += 1
            stat.wall_seconds += wall
            stat.cpu_seconds += cpu
            instruments = self._instruments.get(category)
        if instruments is None:
            registry = self.registry
            instruments = (
                registry.histogram(
                    f"{self.metrics_prefix}.{category}.wall_seconds",
                    buckets=PROFILE_BUCKETS,
                ),
                registry.counter(
                    f"{self.metrics_prefix}.{category}.cpu_seconds"
                ),
            )
            with self._lock:
                self._instruments.setdefault(category, instruments)
        histogram, cpu_counter = instruments
        histogram.observe(wall)
        if cpu > 0.0:
            cpu_counter.inc(cpu)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, PhaseStat]:
        """Category -> aggregate, mutually consistent."""
        with self._lock:
            return {
                category: PhaseStat(stat.spans, stat.wall_seconds,
                                    stat.cpu_seconds)
                for category, stat in self._phases.items()
            }

    def top(self, by: str = "wall", n: int = 10
            ) -> list[tuple[str, PhaseStat]]:
        """The ``n`` heaviest phases by ``wall`` or ``cpu`` seconds."""
        if by not in ("wall", "cpu"):
            raise ValueError(f"order phases by 'wall' or 'cpu', not {by!r}")
        key = (lambda item: item[1].wall_seconds) if by == "wall" \
            else (lambda item: item[1].cpu_seconds)
        return sorted(self.snapshot().items(), key=key, reverse=True)[:n]

    def reset(self) -> None:
        with self._lock:
            self._phases.clear()

    def format(self) -> str:
        """A small human-readable dump (the trace CLI's --profile view)."""
        lines = [f"{'phase':<16} {'spans':>7} {'wall s':>10} {'cpu s':>10} "
                 f"{'cpu/wall':>9}"]
        for category, stat in self.top(n=len(self._phases) or 1):
            lines.append(
                f"{category:<16} {stat.spans:>7} {stat.wall_seconds:>10.4f} "
                f"{stat.cpu_seconds:>10.4f} {stat.cpu_share:>9.2f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Lock contention
# ----------------------------------------------------------------------


class ProfiledLock:
    """A drop-in lock wrapper that times every ``acquire()`` wait.

    Substitutes for anything with the ``acquire(blocking, timeout)`` /
    ``release()`` protocol (``threading.Lock``, ``BoundedSemaphore``).
    Each acquire observes its wait into the shared per-site histogram
    (several locks may share one *site* -- every source's Check-cache
    lock reports as ``check_cache``), and a timed acquire that gives up
    bumps the site's ``timeouts`` counter.  The instruments are plain
    registry :class:`Histogram`/:class:`Counter` objects held directly,
    so recording a wait never touches the registry lock -- which is what
    makes wrapping the registry's *own* lock safe.
    """

    __slots__ = ("site", "_inner", "_wait", "_timeouts")

    def __init__(self, inner: Any, site: str, wait: Histogram,
                 timeouts: Counter):
        self.site = site
        self._inner = inner
        self._wait = wait
        self._timeouts = timeouts

    @property
    def inner(self) -> Any:
        """The wrapped lock (what :meth:`ContentionProfiler.uninstall`
        puts back)."""
        return self._inner

    def acquire(self, blocking: bool = True,
                timeout: float | None = -1) -> bool:
        started = time.perf_counter()
        if not blocking:
            acquired = self._inner.acquire(False)
        elif timeout is None or timeout < 0:
            acquired = self._inner.acquire()
        else:
            acquired = self._inner.acquire(True, timeout)
        self._wait.observe(time.perf_counter() - started)
        if not acquired:
            self._timeouts.inc()
        return acquired

    def release(self) -> None:
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self._inner.release()


class ContentionProfiler:
    """Wraps a mediator's hot locks in :class:`ProfiledLock`\\ s.

    Sites and what they guard:

    * ``plan_cache`` -- the canonical plan cache's LRU lock;
    * ``plan_templates`` -- the template cache's LRU lock;
    * ``check_cache`` -- every catalog description's Check-LRU lock
      (native and commutation-closed forms share the site);
    * ``admission`` -- the admission controller's counter lock (the
      semaphore *queue* wait already has its own
      ``serving.admission.queue_wait_seconds`` histogram);
    * ``metrics_registry`` -- the registry's instrument-table lock.

    :meth:`instrument_mediator` / :meth:`instrument_registry` install;
    :meth:`uninstall` restores every original lock object, making the
    profiler's footprint strictly zero when off.
    """

    def __init__(self, registry: MetricsRegistry | None = None,
                 metrics_prefix: str = "profile.lock"):
        self._registry = registry
        self.metrics_prefix = metrics_prefix
        #: (holder, attribute, original lock) for uninstall, in order.
        self._wrapped: list[tuple[Any, str, Any]] = []
        self._instruments: dict[str, tuple[Histogram, Counter]] = {}
        self._lock = threading.Lock()

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_metrics()

    @property
    def installed(self) -> bool:
        return bool(self._wrapped)

    def _site_instruments(self, site: str) -> tuple[Histogram, Counter]:
        with self._lock:
            instruments = self._instruments.get(site)
            if instruments is None:
                # Created here, *before* any lock is wrapped, so the
                # registry lock is still a plain lock during creation.
                registry = self.registry
                instruments = (
                    registry.histogram(
                        f"{self.metrics_prefix}.{site}.wait_seconds",
                        buckets=PROFILE_BUCKETS,
                    ),
                    registry.counter(f"{self.metrics_prefix}.{site}.timeouts"),
                )
                self._instruments[site] = instruments
            return instruments

    # ------------------------------------------------------------------
    def wrap(self, holder: Any, attribute: str, site: str) -> ProfiledLock:
        """Replace ``holder.<attribute>`` with a profiled wrapper."""
        original = getattr(holder, attribute)
        if isinstance(original, ProfiledLock):
            raise RuntimeError(
                f"{site}: {attribute} on {type(holder).__name__} is "
                "already profiled"
            )
        wait, timeouts = self._site_instruments(site)
        profiled = ProfiledLock(original, site, wait, timeouts)
        setattr(holder, attribute, profiled)
        with self._lock:
            self._wrapped.append((holder, attribute, original))
        return profiled

    def instrument_mediator(self, mediator: "Mediator"
                            ) -> "ContentionProfiler":
        """Wrap every hot lock the mediator owns; returns ``self``."""
        if mediator.plan_cache is not None:
            self.wrap(mediator.plan_cache, "_lock", "plan_cache")
        if mediator.plan_templates is not None:
            self.wrap(mediator.plan_templates._cache, "_lock",
                      "plan_templates")
        for source in dict(mediator.catalog).values():
            descriptions = {id(source.description): source.description}
            closed = source.closed_description
            descriptions.setdefault(id(closed), closed)
            for description in descriptions.values():
                self.wrap(description, "_cache_lock", "check_cache")
        admission = getattr(mediator, "admission", None)
        if admission is not None:
            self.wrap(admission, "_lock", "admission")
        return self

    def instrument_registry(self, registry: MetricsRegistry | None = None
                            ) -> "ContentionProfiler":
        """Wrap the metrics registry's own instrument-table lock.

        Safe because :class:`ProfiledLock` records through direct
        instrument references (instrument locks only, never back
        through the registry lookup path), preserving the repo-wide
        registry-lock-before-instrument-lock ordering.
        """
        target = registry if registry is not None else self.registry
        # Force-create the site instruments first: creation goes through
        # registry.histogram()/counter(), which must still see the plain
        # lock.
        self._site_instruments("metrics_registry")
        self.wrap(target, "_lock", "metrics_registry")
        return self

    def uninstall(self) -> int:
        """Restore every wrapped lock; returns how many were restored."""
        with self._lock:
            wrapped, self._wrapped = self._wrapped, []
        for holder, attribute, original in reversed(wrapped):
            setattr(holder, attribute, original)
        return len(wrapped)

    # ------------------------------------------------------------------
    def sites(self) -> dict[str, dict[str, Any]]:
        """Site -> wait summary (from the site's histogram/counter)."""
        with self._lock:
            instruments = dict(self._instruments)
        summary: dict[str, dict[str, Any]] = {}
        for site, (wait, timeouts) in sorted(instruments.items()):
            reading = wait.snapshot()
            summary[site] = {
                "acquires": reading["count"],
                "wait_seconds": reading["sum"],
                "max_wait_seconds": reading["max"] or 0.0,
                "timeouts": timeouts.value,
            }
        return summary


# ----------------------------------------------------------------------
# One-call wiring
# ----------------------------------------------------------------------


class ProfilingSession:
    """Both profilers installed together; ``stop()`` (or the context
    manager) restores everything.

    ::

        with profile_mediator(mediator, tracer) as session:
            mediator.ask(...)
        session.phases.top()      # aggregates survive stop()
    """

    def __init__(self, phases: PhaseProfiler, locks: ContentionProfiler):
        self.phases = phases
        self.locks = locks

    def stop(self) -> None:
        self.phases.detach()
        self.locks.uninstall()

    def __enter__(self) -> "ProfilingSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def profile_mediator(
    mediator: "Mediator",
    tracer: Tracer,
    registry: MetricsRegistry | None = None,
    profile_registry_lock: bool = False,
) -> ProfilingSession:
    """Turn continuous profiling on for one mediator.

    ``tracer`` must be a recording tracer (the mediator's span stream is
    the phase feed).  ``profile_registry_lock=True`` additionally wraps
    the metrics registry's own lock -- useful when hunting registry
    contention, off by default because the registry is everyone's
    dependency.
    """
    phases = PhaseProfiler(registry=registry).install(tracer)
    locks = ContentionProfiler(registry=registry)
    try:
        locks.instrument_mediator(mediator)
        if profile_registry_lock:
            locks.instrument_registry()
    except BaseException:
        phases.detach()
        locks.uninstall()
        raise
    return ProfilingSession(phases, locks)


def profile_families(snapshot: dict[str, dict[str, Any]],
                     prefix: str) -> Iterator[tuple[str, dict[str, Any]]]:
    """(name-without-prefix, reading) pairs for one ``profile.*`` family
    in a registry snapshot -- shared by the dashboard's profiling panel
    and tests."""
    marker = prefix if prefix.endswith(".") else prefix + "."
    for name in sorted(snapshot):
        if name.startswith(marker):
            yield name[len(marker):], snapshot[name]
