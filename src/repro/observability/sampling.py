"""Trace sampling: keep the interesting traces, bound the memory.

A recording :class:`~repro.observability.trace.Tracer` keeps *every*
span forever -- perfect for one traced query, unusable under serving
load.  :class:`SamplingTracer` is the production variant:

* **head sampling**: each trace is kept with probability ``ratio``,
  decided deterministically from the trace id and ``seed`` the moment
  the decision is needed -- the same run samples the same traces;
* **tail-based keep rules**: a trace the head decision would drop is
  kept anyway when it turns out interesting -- any span ended with
  ``ERROR`` status, or the root span exceeded ``slow_threshold``
  seconds.  Errors and slow queries are exactly the traces worth
  keeping, and a head decision cannot see them;
* **bounded ring buffer**: kept spans land in a ``deque(maxlen=...)``,
  so memory is capped however long the process serves; the oldest kept
  spans are evicted first (counted, never silently);
* **propagated decisions**: a trace attached from another process via
  :meth:`~repro.observability.trace.Tracer.attach_remote` carries the
  *caller's* sampling decision, and this tracer honors it instead of
  re-flipping its own coin -- the only way a cross-process trace is
  ever kept (or dropped) as one unit.  The top local span of such a
  trace parents under the remote placeholder, so it is recognized as
  the local root and the trace completes normally;
* **pinned traces**: a trace whose latency landed in a histogram's
  exemplar slots (see :class:`~repro.observability.metrics.Histogram`)
  is kept regardless of the head decision -- an exported exemplar
  pointing at a dropped trace would be a dead link.  Pin with
  :meth:`SamplingTracer.pin_trace` *before* the root finishes.

Until a trace's root span finishes, its spans sit in a per-trace
pending buffer (tail rules need the whole trace).  A trace whose root
never finishes cannot pend forever: past ``max_pending_traces`` the
oldest pending trace is dropped and accounted.  The accounting is
exact and lock-guarded: every finished span ends up in exactly one of
``spans_kept`` / ``spans_dropped``, every rooted trace in exactly one
of ``traces_kept`` / ``traces_dropped`` -- the concurrency battery in
``tests/test_sampling.py`` reconciles both under a thread storm.

Exporters attached with ``add_exporter`` see **kept** spans only, at
trace-completion time.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any

from repro.observability.trace import STATUS_ERROR, Span, Tracer


class SamplingTracer(Tracer):
    """A recording tracer that samples head-first and keeps tails."""

    def __init__(
        self,
        ratio: float = 0.1,
        slow_threshold: float | None = None,
        capacity: int = 2048,
        seed: int = 0,
        max_pending_traces: int = 1024,
    ):
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if max_pending_traces < 1:
            raise ValueError("max_pending_traces must be at least 1")
        super().__init__()
        self.ratio = ratio
        self.slow_threshold = slow_threshold
        self.capacity = capacity
        self.seed = seed
        self.max_pending_traces = max_pending_traces
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._pending: dict[int, list[Span]] = {}
        #: Trace ids that must be kept whatever the head decision says
        #: (exemplar-recorded observations point at them).  Bounded like
        #: the pending table; an id is consumed when its trace settles.
        self._pinned: set[int] = set()
        self.traces_kept = 0
        self.traces_dropped = 0
        self.spans_kept = 0
        self.spans_dropped = 0
        self.spans_evicted = 0
        self.traces_pinned = 0

    # -- decisions -----------------------------------------------------
    def head_decision(self, trace_id: int) -> bool:
        """The deterministic coin flip for one trace id."""
        if self.ratio >= 1.0:
            return True
        if self.ratio <= 0.0:
            return False
        return random.Random((self.seed << 32) ^ trace_id).random() < self.ratio

    def sampling_decision(self, trace_id: int) -> bool:
        """The decision to propagate onward: a remote caller's decision
        is honored verbatim; an origin trace uses the head coin."""
        with self._lock:
            return self._decision_locked(trace_id)

    def _decision_locked(self, trace_id: int) -> bool:
        remote = self._remote_traces.get(trace_id)
        if remote is not None:
            return remote.sampled
        return self.head_decision(trace_id)

    def pin_trace(self, trace_id: int) -> None:
        """Force-keep ``trace_id`` whatever the head decision says.

        The mediator calls this the moment a latency histogram records
        an exemplar for the trace, so every exported exemplar's trace
        is resolvable in the ring.  Bounded alongside the pending
        table; pinning after the trace already settled is a no-op.
        """
        with self._lock:
            if len(self._pinned) < self.max_pending_traces:
                self._pinned.add(trace_id)

    def _tail_keep(self, root: Span, spans: list[Span]) -> str | None:
        """The tail rule that keeps this trace, or ``None``."""
        if any(span.status == STATUS_ERROR for span in spans):
            return "error"
        if (self.slow_threshold is not None
                and root.duration >= self.slow_threshold):
            return "slow"
        return None

    # -- the recording hook --------------------------------------------
    def _is_local_root_locked(self, span: Span) -> bool:
        """A root here: no parent at all, or the parent is the remote
        placeholder of an attached cross-process context (the remote
        span finishes in *its* process; waiting for it locally would
        pend the trace forever)."""
        if span.parent_id is None:
            return True
        remote = self._remote_traces.get(span.trace_id)
        return remote is not None and span.parent_id == remote.span_id

    def _record(self, span: Span) -> None:
        exporters: list = []
        kept: list[Span] = []
        with self._lock:
            bucket = self._pending.setdefault(span.trace_id, [])
            bucket.append(span)
            if not self._is_local_root_locked(span):
                self._evict_pending_locked()
                return
            # The root finished: the whole trace is in hand -- decide.
            spans = self._pending.pop(span.trace_id)
            pinned = span.trace_id in self._pinned
            self._pinned.discard(span.trace_id)
            if pinned:
                self.traces_pinned += 1
            if self._decision_locked(span.trace_id) or pinned \
                    or self._tail_keep(span, spans):
                kept = spans
                self.traces_kept += 1
                self.spans_kept += len(spans)
                overflow = max(
                    0, len(self._ring) + len(spans) - self.capacity
                )
                self.spans_evicted += overflow
                self._ring.extend(spans)
                exporters = list(self._exporters)
            else:
                self.traces_dropped += 1
                self.spans_dropped += len(spans)
        for exporter in exporters:
            for span in kept:
                exporter(span)

    def _evict_pending_locked(self) -> None:
        """Bound the pending table (a rootless trace must not leak)."""
        while len(self._pending) > self.max_pending_traces:
            oldest = next(iter(self._pending))
            spans = self._pending.pop(oldest)
            self.traces_dropped += 1
            self.spans_dropped += len(spans)

    # -- collection ----------------------------------------------------
    def finished_spans(self) -> list[Span]:
        """The kept spans currently in the ring buffer (oldest first)."""
        with self._lock:
            return list(self._ring)

    def trace_spans(self, trace_id: int) -> list[Span]:
        """Finished spans of one trace: pending buffer plus kept ring."""
        with self._lock:
            pending = list(self._pending.get(trace_id, []))
            kept = [s for s in self._ring if s.trace_id == trace_id]
        return pending + kept

    def stats(self) -> dict[str, Any]:
        """The exact keep/drop accounting (see the module docstring)."""
        with self._lock:
            return {
                "ratio": self.ratio,
                "slow_threshold": self.slow_threshold,
                "capacity": self.capacity,
                "traces_kept": self.traces_kept,
                "traces_dropped": self.traces_dropped,
                "spans_kept": self.spans_kept,
                "spans_dropped": self.spans_dropped,
                "spans_evicted": self.spans_evicted,
                "traces_pinned": self.traces_pinned,
                "ring_size": len(self._ring),
                "pending_traces": len(self._pending),
                "pinned_traces": len(self._pinned),
            }

    def format_stats(self) -> str:
        """One line for the CLI: what was kept, dropped and why."""
        stats = self.stats()
        threshold = (
            "off" if stats["slow_threshold"] is None
            else f"{stats['slow_threshold'] * 1000:.0f}ms"
        )
        return (
            f"sampler ratio={stats['ratio']:g} slow>{threshold}: "
            f"{stats['traces_kept']} traces kept, "
            f"{stats['traces_dropped']} dropped "
            f"({stats['spans_kept']} spans kept, "
            f"{stats['spans_dropped']} dropped, "
            f"{stats['spans_evicted']} evicted; "
            f"ring {stats['ring_size']}/{stats['capacity']})"
        )

    def reset(self) -> None:
        """Drop kept and pending spans and zero the accounting."""
        with self._lock:
            self._finished.clear()
            self._ring.clear()
            self._pending.clear()
            self._pinned.clear()
            self.traces_kept = 0
            self.traces_dropped = 0
            self.spans_kept = 0
            self.spans_dropped = 0
            self.spans_evicted = 0
            self.traces_pinned = 0
