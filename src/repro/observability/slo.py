"""Latency objectives: error-budget tracking and the slow-query log.

A production mediator needs two answers the metrics alone do not give:
*are we meeting the objective* (and how much failure budget is left),
and *which queries blew it* (with enough context to debug them without
re-running anything).

:class:`SLOTracker` answers the first from a bucketed
:class:`~repro.observability.metrics.Histogram` of ask latencies: the
objective is inserted as a bucket boundary, so "how many asks finished
within the objective" is an exact cumulative read, not an estimate.
The target (say 0.99) defines the error budget -- the fraction of
requests *allowed* to breach -- and ``status()`` reports attainment,
budget burn, and ``ok`` / ``degraded``; the telemetry server's
``/health`` endpoint turns ``degraded`` into a 503.

:class:`SlowQueryLog` answers the second: every ask past the objective
is appended (thread-safe, bounded ring -- oldest evicted, counted) as a
:class:`SlowQuery` carrying the query text, measured duration, the
canonical plan fingerprint (equivalent spellings of a query share one
fingerprint, so the log groups by *plan*, not by text), the per-source
meter deltas of exactly that execution, and the rendered span timeline
when a recording tracer was installed.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.observability.metrics import Histogram, quantile_from_snapshot


def plan_fingerprint(key: object) -> str:
    """A short stable fingerprint of a canonical plan-cache key.

    Equivalent rewritings of a query canonicalize to the same key
    (see :func:`repro.serving.plan_cache.plan_cache_key`), so they
    share a fingerprint -- the slow-query log groups by what was
    *planned*, not by how the query happened to be spelled.
    """
    digest = hashlib.sha1(repr(key).encode("utf-8")).hexdigest()
    return digest[:12]


@dataclass
class SlowQuery:
    """One ask that finished past its latency objective."""

    query: str
    source: str
    duration_seconds: float
    objective_seconds: float
    fingerprint: str
    planner: str | None = None
    error: str | None = None
    #: Source name -> (queries, tuples) meter delta of this execution.
    per_source: dict[str, tuple[int, int]] = field(default_factory=dict)
    timeline: str | None = None
    #: The ask's trace id when a tracer was recording -- the join key
    #: against exported spans and OpenMetrics exemplars.
    trace_id: int | None = None
    wall_time: float = field(default_factory=time.time)

    def format(self) -> str:
        """The log entry as an indented, greppable block."""
        status = "ERROR" if self.error else "ok"
        lines = [
            f"[{self.fingerprint}] {self.duration_seconds * 1000:.2f} ms "
            f"(objective {self.objective_seconds * 1000:.2f} ms, {status}) "
            f"{self.query}"
        ]
        if self.planner:
            lines.append(f"    planner={self.planner} source={self.source}")
        if self.error:
            lines.append(f"    error={self.error}")
        if self.trace_id is not None:
            lines.append(f"    trace_id={self.trace_id:032x}")
        for name in sorted(self.per_source):
            queries, tuples = self.per_source[name]
            lines.append(f"    {name}: {queries} queries, {tuples} tuples")
        if self.timeline:
            lines.extend("    " + line for line in self.timeline.splitlines())
        return "\n".join(lines)


class SlowQueryLog:
    """A bounded, thread-safe log of objective-breaching asks."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        #: Exact accounting: every append lands in the log; past
        #: capacity the oldest entry is evicted and counted here.
        self.recorded = 0
        self.evicted = 0

    def append(self, entry: SlowQuery) -> None:
        with self._lock:
            if len(self._entries) == self.capacity:
                self.evicted += 1
            self._entries.append(entry)
            self.recorded += 1

    def entries(self) -> list[SlowQuery]:
        """Oldest-first snapshot of the retained entries."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.recorded = 0
            self.evicted = 0

    def format(self) -> str:
        """The whole log, newest last (the CLI's ``--slowlog`` view)."""
        entries = self.entries()
        with self._lock:
            header = (
                f"slow-query log: {len(entries)} retained of "
                f"{self.recorded} recorded ({self.evicted} evicted)"
            )
        if not entries:
            return header
        return "\n".join([header] + [entry.format() for entry in entries])


class SLOTracker:
    """Error-budget accounting over a bucketed latency histogram.

    ``histogram`` must carry ``objective_seconds`` as one of its bucket
    boundaries (the mediator constructs it that way); the cumulative
    count at that boundary is then exactly the number of asks that met
    the objective.  ``target`` is the intended attainment (0.99 = at
    most 1% of asks may breach); the **error budget** at any instant is
    ``(1 - target) * total`` breaches, and ``burn`` is the fraction of
    that budget already spent (>= 1.0 means exhausted -> degraded).
    """

    def __init__(self, histogram: Histogram, objective_seconds: float,
                 target: float = 0.99):
        if objective_seconds <= 0:
            raise ValueError("objective_seconds must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {target}")
        if objective_seconds not in histogram.boundaries:
            raise ValueError(
                f"the latency histogram must have {objective_seconds!r} as "
                f"a bucket boundary for exact SLO accounting"
            )
        self.histogram = histogram
        self.objective_seconds = objective_seconds
        self.target = target

    def status(self) -> dict[str, Any]:
        """The current SLO reading (consumed by ``/health``)."""
        snapshot = self.histogram.snapshot()
        total = snapshot["count"]
        good = 0
        for boundary, cumulative in snapshot["buckets"]:
            if boundary <= self.objective_seconds:
                good = cumulative
            else:
                break
        breached = total - good
        budget = (1.0 - self.target) * total
        if breached == 0:
            burn = 0.0
        elif budget > 0:
            burn = breached / budget
        else:  # total == 0 cannot reach here; guard anyway
            burn = float("inf")
        attainment = good / total if total else 1.0
        return {
            "objective_seconds": self.objective_seconds,
            "target": self.target,
            "total": total,
            "breached": breached,
            "attainment": attainment,
            "budget_burn": burn,
            "p99_seconds": quantile_from_snapshot(snapshot, 0.99),
            "status": "ok" if burn < 1.0 else "degraded",
        }

    @property
    def degraded(self) -> bool:
        """True once the error budget is exhausted."""
        return self.status()["status"] == "degraded"

    def format(self) -> str:
        """One line for dashboards and the CLI."""
        status = self.status()
        return (
            f"slo {status['status']}: "
            f"{status['attainment'] * 100:.2f}% within "
            f"{status['objective_seconds'] * 1000:.1f} ms "
            f"(target {status['target'] * 100:g}%), "
            f"{status['breached']}/{status['total']} breached, "
            f"budget burn {status['budget_burn']:.2f}x, "
            f"p99 {status['p99_seconds'] * 1000:.2f} ms"
        )
