"""Observability: tracing, metrics and exporters for the whole stack.

The paper's evaluation (Sections 5-7) is framed in terms of quantities
-- sub-plans kept (Q), pruning rules fired (PR1-PR3), queries issued,
tuples moved -- and the production north star adds wall-clock ones.
This package makes all of them visible at runtime without any external
dependency:

* :mod:`repro.observability.trace` -- :class:`Tracer` / nested
  :class:`Span` trees with thread-local context propagation (and the
  near-zero-cost :class:`NullTracer` for the disabled path);
* :mod:`repro.observability.metrics` -- the :class:`MetricsRegistry`
  of named counters/gauges/histograms;
* :mod:`repro.observability.export` -- JSONL round-trip, streaming
  and in-memory exporters, span-tree utilities;
* :mod:`repro.observability.timeline` -- the ASCII timeline behind
  ``Mediator.explain(trace=True)`` and ``python -m repro.trace``;
* :mod:`repro.observability.sampling` -- the production
  :class:`SamplingTracer`: head-sampling ratio, tail keep rules
  (errors and slow traces always kept), bounded ring buffer;
* :mod:`repro.observability.profiling` -- continuous profiling:
  :class:`PhaseProfiler` (wall/CPU per span category) and
  :class:`ContentionProfiler` (lock acquire-wait histograms), both
  off by default and free when off;
* :mod:`repro.observability.exposition` -- the OpenMetrics text
  renderer behind ``/metrics``;
* :mod:`repro.observability.server` -- the opt-in, stdlib-only
  :class:`TelemetryServer` (``/metrics`` / ``/health`` /
  ``/snapshot``);
* :mod:`repro.observability.slo` -- :class:`SLOTracker` error-budget
  accounting and the bounded :class:`SlowQueryLog`;
* :mod:`repro.observability.federation` -- mergeable snapshot
  semantics and the :class:`FederatedScraper` that pulls N telemetry
  servers into one :class:`ClusterView` over real HTTP;
* :mod:`repro.observability.events` -- the wide-event request log:
  one structured :class:`AskEvent` per ``Mediator.ask`` in a bounded
  :class:`EventLog` ring with an optional JSONL file sink.

Cross-process tracing lives in :mod:`repro.observability.trace` too:
:class:`TraceContext` serializes a span's (trace id, span id,
sampling decision) into a W3C-``traceparent``-style header dict via
``inject``/``extract``, and ``Tracer.attach_remote`` parents local
spans under the remote caller.
"""

from repro.observability.exposition import (
    OPENMETRICS_CONTENT_TYPE,
    render_openmetrics,
)
from repro.observability.events import AskEvent, EventLog, read_events
from repro.observability.export import (
    InMemoryCollector,
    JsonlExporter,
    orphan_spans,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    tree_shape,
    write_jsonl,
)
from repro.observability.federation import (
    ClusterView,
    FederatedScraper,
    InstanceStatus,
    merge_readings,
    merge_snapshots,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    quantile_from_snapshot,
    set_metrics,
    use_metrics,
)
from repro.observability.profiling import (
    PROFILE_BUCKETS,
    ContentionProfiler,
    PhaseProfiler,
    PhaseStat,
    ProfiledLock,
    ProfilingSession,
    phase_category,
    profile_families,
    profile_mediator,
)
from repro.observability.sampling import SamplingTracer
from repro.observability.server import TelemetryServer
from repro.observability.slo import (
    SLOTracker,
    SlowQuery,
    SlowQueryLog,
    plan_fingerprint,
)
from repro.observability.timeline import render_timeline
from repro.observability.trace import (
    NULL_TRACER,
    TRACEPARENT_HEADER,
    NullTracer,
    Span,
    SpanEvent,
    TraceContext,
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    use_tracer,
)

__all__ = [
    "AskEvent",
    "ClusterView",
    "ContentionProfiler",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventLog",
    "Exemplar",
    "FederatedScraper",
    "Gauge",
    "Histogram",
    "InMemoryCollector",
    "InstanceStatus",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OPENMETRICS_CONTENT_TYPE",
    "PROFILE_BUCKETS",
    "PhaseProfiler",
    "PhaseStat",
    "ProfiledLock",
    "ProfilingSession",
    "SLOTracker",
    "SamplingTracer",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "SpanEvent",
    "TRACEPARENT_HEADER",
    "TelemetryServer",
    "TraceContext",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "merge_readings",
    "merge_snapshots",
    "orphan_spans",
    "phase_category",
    "plan_fingerprint",
    "profile_families",
    "profile_mediator",
    "quantile_from_snapshot",
    "read_events",
    "read_jsonl",
    "render_openmetrics",
    "render_timeline",
    "set_metrics",
    "set_tracer",
    "span_from_dict",
    "span_to_dict",
    "trace_event",
    "tree_shape",
    "use_metrics",
    "use_tracer",
    "write_jsonl",
]
