"""Observability: tracing, metrics and exporters for the whole stack.

The paper's evaluation (Sections 5-7) is framed in terms of quantities
-- sub-plans kept (Q), pruning rules fired (PR1-PR3), queries issued,
tuples moved -- and the production north star adds wall-clock ones.
This package makes all of them visible at runtime without any external
dependency:

* :mod:`repro.observability.trace` -- :class:`Tracer` / nested
  :class:`Span` trees with thread-local context propagation (and the
  near-zero-cost :class:`NullTracer` for the disabled path);
* :mod:`repro.observability.metrics` -- the :class:`MetricsRegistry`
  of named counters/gauges/histograms;
* :mod:`repro.observability.export` -- JSONL round-trip, streaming
  and in-memory exporters, span-tree utilities;
* :mod:`repro.observability.timeline` -- the ASCII timeline behind
  ``Mediator.explain(trace=True)`` and ``python -m repro.trace``.
"""

from repro.observability.export import (
    InMemoryCollector,
    JsonlExporter,
    orphan_spans,
    read_jsonl,
    span_from_dict,
    span_to_dict,
    tree_shape,
    write_jsonl,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
    use_metrics,
)
from repro.observability.timeline import render_timeline
from repro.observability.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    use_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryCollector",
    "JsonlExporter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanEvent",
    "Tracer",
    "get_metrics",
    "get_tracer",
    "orphan_spans",
    "read_jsonl",
    "render_timeline",
    "set_metrics",
    "set_tracer",
    "span_from_dict",
    "span_to_dict",
    "trace_event",
    "tree_shape",
    "use_metrics",
    "use_tracer",
    "write_jsonl",
]
