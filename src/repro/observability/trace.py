"""End-to-end tracing: nested spans with context-local propagation.

The paper's evaluation is about quantities -- sub-plans kept, pruning
rules fired, queries issued -- and the ROADMAP's production north star
adds wall-clock ones: where a query's time actually went.  A
:class:`Tracer` answers both with the classic span model (emulating the
OpenTelemetry shape, without the dependency):

* a :class:`Span` is a named, timed unit of work with attributes, a
  status and optional point-in-time :class:`SpanEvent`\\ s;
* spans nest: the tracer keeps the current span in a
  :class:`contextvars.ContextVar`, and a span opened while another is
  active becomes its child.  For plain threads a ``ContextVar``
  behaves exactly like the thread-local it replaced (each thread has
  its own implicit context); for :mod:`asyncio` it additionally gives
  every task an isolated copy, so spans opened by interleaved tasks on
  one event-loop thread cannot corrupt each other's nesting;
* cross-thread and cross-task work stays connected:
  :meth:`Tracer.current_context` captures the active span as a token
  and :meth:`Tracer.attach` installs it on the other side, which is
  exactly what the parallel executor does when it fans a plan's
  branches out to worker threads and what the async executor does when
  it spawns branch tasks;
* cross-**process** work stays connected too: a :class:`TraceContext`
  is the serializable form of "the active span here" -- trace id, span
  id and the sampling decision -- with :meth:`TraceContext.inject` /
  :meth:`TraceContext.extract` moving it through a W3C
  ``traceparent``-style header dict, and :meth:`Tracer.attach_remote`
  parenting local spans under the remote caller's span so an ask that
  crosses a socket stitches into one trace.

Disabled tracing must cost (almost) nothing on the hot path, so the
module ships :class:`NullTracer`: same interface, a single shared
no-op span and context manager, no allocation, no locking.  The
module-level default tracer is a ``NullTracer``; production code calls
:func:`get_tracer` at use sites and never checks for ``None``.

Everything here is thread-safe: span-id allocation and the
finished-span buffer are lock-guarded, and the *current span* is
context-local by construction.
"""

from __future__ import annotations

import contextvars
import re
import threading
import time
from collections import OrderedDict, namedtuple
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterator, Mapping

#: Span status values (OpenTelemetry's three-valued status, flattened).
STATUS_OK = "OK"
STATUS_ERROR = "ERROR"

#: The header key :meth:`TraceContext.inject` writes (W3C trace
#: context's field name, so any traceparent-aware proxy passes it on).
TRACEPARENT_HEADER = "traceparent"

#: How many remote trace decisions a tracer remembers at once (a
#: server that attaches thousands of remote contexts must not leak).
MAX_REMOTE_TRACES = 4096

_TRACEPARENT = re.compile(
    r"[0-9a-f]{2}-[0-9a-f]{32}-[0-9a-f]{16}-[0-9a-f]{2}\Z"
).fullmatch

#: Low hex digits with bit 0 set -- the flags byte's last nibble is in
#: this set exactly when the ``sampled`` flag is on.
_SAMPLED_FLAGS = frozenset("13579bdf")


@lru_cache(maxsize=1024)
def _render_traceparent(context: "TraceContext") -> str:
    # Rendering is pure and contexts are hashable, so the header for a
    # hot context (a mediator injecting the same active span into every
    # outgoing source request) is formatted once, not per request.
    return "00-%032x-%016x-%02x" % (
        context[0], context[1], 1 if context[2] else 0)


class TraceContext(namedtuple("TraceContext",
                              ("trace_id", "span_id", "sampled"))):
    """The serializable identity of one active span (for process hops).

    Everything a remote callee needs to stitch its spans into the
    caller's trace: the ``trace_id`` all spans of the trace share, the
    ``span_id`` of the span that was active at the call site (the
    remote side's parent), and the caller's ``sampled`` decision so a
    :class:`~repro.observability.sampling.SamplingTracer` on the other
    side honors it instead of re-flipping the coin (without this, a
    trace sampled at the front end would be dropped at random by each
    shard, and no cross-process trace would ever be whole).

    The wire form is W3C trace context's ``traceparent`` field --
    ``00-<32 hex trace id>-<16 hex parent id>-<flags>`` -- carried in
    any string-to-string mapping (HTTP headers, a JSON envelope, an
    environment dict).

    A tuple (not a dataclass) because inject/extract sit on the
    per-request path of every cross-process hop: ``tuple.__new__``
    construction and index access keep both operations around the
    microsecond mark (benchmark X17 pins this).
    """

    __slots__ = ()

    def __new__(cls, trace_id: int, span_id: int,
                sampled: bool = True) -> "TraceContext":
        if not 0 < trace_id < 1 << 128:
            raise ValueError(f"trace_id out of range: {trace_id}")
        if not 0 < span_id < 1 << 64:
            raise ValueError(f"span_id out of range: {span_id}")
        return tuple.__new__(cls, (trace_id, span_id, bool(sampled)))

    def to_traceparent(self) -> str:
        """The W3C ``traceparent`` rendering of this context."""
        return _render_traceparent(self)

    @classmethod
    def from_traceparent(cls, header: str) -> "TraceContext | None":
        """Parse one ``traceparent`` value; ``None`` if malformed.

        Malformed headers are *dropped*, never raised: a mediator must
        answer a request with a garbled header, just untraced -- the
        W3C spec's restart semantics.
        """
        if not isinstance(header, str):
            return None
        if _TRACEPARENT(header) is None:
            # Lenient retry: canonical wire form is lowercase, but
            # uppercase hex and stray padding are unambiguous.
            header = header.strip().lower()
            if _TRACEPARENT(header) is None:
                return None
        trace_id = int(header[3:35], 16)
        span_id = int(header[36:52], 16)
        if not trace_id or not span_id:  # all-zero ids are invalid
            return None
        # Validation already done by the wire-format match above, so
        # skip the checked constructor.
        return tuple.__new__(
            cls, (trace_id, span_id, header[54] in _SAMPLED_FLAGS))

    def inject(self, carrier: dict | None = None) -> dict:
        """Write this context into ``carrier`` (created if ``None``)."""
        if carrier is None:
            carrier = {}
        carrier[TRACEPARENT_HEADER] = self.to_traceparent()
        return carrier

    @classmethod
    def extract(cls, carrier: Mapping[str, str] | None
                ) -> "TraceContext | None":
        """Read a context back out of a header dict (``None`` if absent
        or malformed -- extraction never raises)."""
        if not carrier:
            return None
        header = carrier.get(TRACEPARENT_HEADER)
        if header is None:  # header dicts are often case-insensitive-ish
            for key, value in carrier.items():
                if isinstance(key, str) \
                        and key.lower() == TRACEPARENT_HEADER:
                    header = value
                    break
        if header is None:
            return None
        return cls.from_traceparent(header)


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (structured log record)."""

    name: str
    timestamp: float
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One named, timed unit of work in a trace tree."""

    name: str
    span_id: int
    trace_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    status: str = STATUS_OK
    error: str | None = None
    #: Thread-CPU clock readings bracketing the span, captured only when
    #: the owning tracer has ``record_cpu`` set (a PhaseProfiler is
    #: attached); ``None`` otherwise, so the default path never reads
    #: the CPU clock.
    cpu_start: float | None = None
    cpu_end: float | None = None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def cpu_duration(self) -> float:
        """Thread-CPU seconds spent inside the span (0.0 unless the
        tracer recorded CPU clocks -- see ``Tracer.record_cpu``).

        A span runs on exactly one thread, so ``time.thread_time()``
        deltas are the span's own CPU burn: a 50 ms span with 0.2 ms of
        CPU was waiting on the network, one with 49 ms was computing.
        """
        if self.cpu_start is None or self.cpu_end is None:
            return 0.0
        return self.cpu_end - self.cpu_start

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    def add_event(self, name: str, timestamp: float | None = None,
                  **attributes: Any) -> None:
        if timestamp is None:
            timestamp = time.perf_counter()
        self.events.append(SpanEvent(name, timestamp, attributes))

    def record_exception(self, exc: BaseException) -> None:
        """Mark the span failed and keep the exception as an event."""
        self.status = STATUS_ERROR
        self.error = f"{type(exc).__name__}: {exc}"
        self.add_event(
            "exception",
            exception_type=type(exc).__name__,
            exception_message=str(exc),
        )


class _NullSpan(Span):
    """The shared do-nothing span the :class:`NullTracer` hands out."""

    def __init__(self) -> None:
        super().__init__(name="", span_id=0, trace_id=0, parent_id=None,
                         start=0.0)

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, timestamp: float | None = None,
                  **attributes: Any) -> None:
        pass

    def record_exception(self, exc: BaseException) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces nested spans and collects the finished ones.

    ``span(...)`` is the one entry point::

        with tracer.span("mediator.ask", query=text) as span:
            ...
            span.set_attribute("rows", len(rows))

    An exception escaping the block marks the span ``ERROR`` (with the
    exception recorded as an event) and re-raises.  Finished spans land
    in an internal buffer (:meth:`finished_spans`) and are offered to
    any registered exporter -- a callable taking the completed span.
    """

    enabled = True

    #: When true, every span brackets its body with ``time.thread_time()``
    #: readings so :attr:`Span.cpu_duration` is real.  Off by default --
    #: the CPU clock is a syscall on some platforms -- and flipped on by
    #: :meth:`~repro.observability.profiling.PhaseProfiler.install`.
    record_cpu = False

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: The innermost open span of the current thread *or* asyncio
        #: task.  A ContextVar is thread-local for plain threads and
        #: task-local under asyncio (each task runs in a copied
        #: context), which is what lets one event-loop thread interleave
        #: thousands of traced source calls without crosstalk.
        self._current: contextvars.ContextVar[Span | None] = \
            contextvars.ContextVar("repro_current_span", default=None)
        self._next_id = 1
        self._finished: list[Span] = []
        self._exporters: list[Callable[[Span], None]] = []
        #: Remote contexts this tracer attached, keyed by trace id --
        #: how a subclass recognizes a remote-parented local root and
        #: honors the propagated sampling decision.  Bounded (oldest
        #: forgotten) so a long-serving process cannot leak one entry
        #: per incoming request.
        self._remote_traces: OrderedDict[int, TraceContext] = OrderedDict()

    # -- id allocation -------------------------------------------------
    def _allocate_id(self) -> int:
        with self._lock:
            allocated = self._next_id
            self._next_id += 1
            return allocated

    # -- context -------------------------------------------------------
    @property
    def current_span(self) -> Span | None:
        """The span active in *this* context (innermost open one)."""
        return self._current.get()

    def current_context(self) -> Span | None:
        """A token for handing the active span to another thread/task."""
        return self.current_span

    @contextmanager
    def attach(self, token: Span | None) -> Iterator[None]:
        """Install a captured context as the current span here.

        The parallel executor calls this on the worker side (and the
        async executor inside each spawned task) so branch spans parent
        under the span that was active where the branch was submitted
        -- one connected tree, however many threads or tasks ran.
        """
        previous = self._current.get()
        self._current.set(token)
        try:
            yield
        finally:
            self._current.set(previous)

    # -- cross-process context -----------------------------------------
    def current_trace_context(self) -> TraceContext | None:
        """The active span as a serializable :class:`TraceContext`
        (``None`` when no span is open).  Inject it into the outgoing
        request's headers; the remote side extracts and
        :meth:`attach_remote`\\ s it."""
        span = self.current_span
        if span is None:
            return None
        return TraceContext(
            trace_id=span.trace_id,
            span_id=span.span_id,
            sampled=self.sampling_decision(span.trace_id),
        )

    def sampling_decision(self, trace_id: int) -> bool:
        """Whether this tracer intends to keep ``trace_id`` (a full
        recorder keeps everything; :class:`SamplingTracer` overrides
        with its propagated-or-head decision)."""
        return True

    def remote_context(self, trace_id: int) -> TraceContext | None:
        """The remote context ``trace_id`` was attached under, if any."""
        with self._lock:
            return self._remote_traces.get(trace_id)

    @contextmanager
    def attach_remote(self, context: TraceContext) -> Iterator[Span]:
        """Parent local spans under a span from *another process*.

        Installs a placeholder for the remote caller's span -- carrying
        its trace id and span id, never itself recorded -- as the
        current span, so every span opened inside the block lands in
        the remote trace with the remote span as its parent.  The
        context (sampling decision included) is remembered in a bounded
        table, which is how a :class:`SamplingTracer` recognizes the
        locally-rootless trace when its top local span finishes and
        honors the caller's decision instead of re-sampling.
        """
        placeholder = Span(
            name="<remote>",
            span_id=context.span_id,
            trace_id=context.trace_id,
            parent_id=None,
            start=time.perf_counter(),
            attributes={"remote": True},
        )
        with self._lock:
            self._remote_traces[context.trace_id] = context
            self._remote_traces.move_to_end(context.trace_id)
            while len(self._remote_traces) > MAX_REMOTE_TRACES:
                self._remote_traces.popitem(last=False)
        with self.attach(placeholder):
            yield placeholder

    # -- spans ---------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        parent = self.current_span
        opened = Span(
            name=name,
            span_id=self._allocate_id(),
            trace_id=parent.trace_id if parent is not None else self._allocate_id(),
            parent_id=parent.span_id if parent is not None else None,
            start=time.perf_counter(),
            attributes=dict(attributes),
        )
        if self.record_cpu:
            opened.cpu_start = time.thread_time()
        self._current.set(opened)
        try:
            yield opened
        except BaseException as exc:
            opened.record_exception(exc)
            raise
        finally:
            if opened.cpu_start is not None:
                opened.cpu_end = time.thread_time()
            opened.end = time.perf_counter()
            self._current.set(parent)
            self._record(opened)

    def _record(self, span: Span) -> None:
        """Admit one finished span (subclasses decide differently --
        :class:`~repro.observability.sampling.SamplingTracer` buffers
        per trace and applies its keep rules here)."""
        with self._lock:
            self._finished.append(span)
            exporters = list(self._exporters)
        for exporter in exporters:
            exporter(span)

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a structured event to the current span (if any)."""
        span = self.current_span
        if span is not None:
            span.add_event(name, **attributes)

    # -- collection ----------------------------------------------------
    def add_exporter(self, exporter: Callable[[Span], None]) -> None:
        with self._lock:
            self._exporters.append(exporter)

    def remove_exporter(self, exporter: Callable[[Span], None]) -> None:
        """Detach a previously added exporter (no-op if absent)."""
        with self._lock:
            try:
                self._exporters.remove(exporter)
            except ValueError:
                pass

    def finished_spans(self) -> list[Span]:
        """A snapshot of every span finished so far (ended order)."""
        with self._lock:
            return list(self._finished)

    def trace_spans(self, trace_id: int) -> list[Span]:
        """The finished spans of one trace (e.g. the ask being timed).

        The slow-query log uses this to render a timeline of the query
        that just blew its latency objective: by then every child span
        has finished even though the root is still open.
        """
        return [span for span in self.finished_spans()
                if span.trace_id == trace_id]

    def reset(self) -> None:
        """Drop collected spans (exporters and open spans are kept)."""
        with self._lock:
            self._finished.clear()


class _NullContext:
    """A reusable context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTracer(Tracer):
    """The disabled tracer: every operation is a near-zero-cost no-op.

    ``span()`` returns one shared context manager yielding one shared
    inert span -- no allocation, no clock reads, no locking -- so
    instrumented code needs no ``if tracing:`` guards (benchmark X10
    measures the residual overhead).
    """

    enabled = False

    def __init__(self) -> None:  # deliberately no state at all
        pass

    @property
    def current_span(self) -> Span | None:
        return None

    def current_context(self) -> Span | None:
        return None

    def current_trace_context(self) -> TraceContext | None:
        return None

    def sampling_decision(self, trace_id: int) -> bool:
        return False

    def remote_context(self, trace_id: int) -> TraceContext | None:
        return None

    def attach(self, token: Span | None) -> "_NullContext":
        return _NULL_CONTEXT

    def attach_remote(self, context: TraceContext) -> "_NullContext":
        return _NULL_CONTEXT

    def span(self, name: str, **attributes: Any) -> "_NullContext":
        return _NULL_CONTEXT

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def add_exporter(self, exporter: Callable[[Span], None]) -> None:
        raise ValueError("a NullTracer never finishes spans to export; "
                         "install a Tracer first (set_tracer/use_tracer)")

    def remove_exporter(self, exporter: Callable[[Span], None]) -> None:
        pass

    def finished_spans(self) -> list[Span]:
        return []

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()

_default_tracer: Tracer = NULL_TRACER
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code reports to."""
    return _default_tracer


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` globally (``None`` = disable); returns the old one."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer if tracer is not None else NULL_TRACER
        return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scoped :func:`set_tracer`: install for the block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def trace_event(logger, level: int, message: str, *args: Any,
                event: str, **attributes: Any) -> None:
    """One call, two audiences: a classic log line plus a span event.

    Keeps the human-readable (and backward-compatible) log message
    flowing through the stdlib ``logging`` hierarchy while recording
    the *structured* form -- ``event`` name and attributes -- on the
    current span, so tests and tools assert on attributes instead of
    message prefixes.
    """
    get_tracer().event(event, **attributes)
    if logger.isEnabledFor(level):
        logger.log(level, message, *args)
