"""Metrics federation: one registry-shaped view over N mediator shards.

The ROADMAP's sharded mediator cluster needs "an aggregated /metrics +
/health view across shards" -- a scraper that pulls every instance's
``/snapshot`` + ``/health`` and answers for the *cluster* what a single
:class:`~repro.observability.server.TelemetryServer` answers for one
process.  Two layers, deliberately separable:

**Merge semantics** (:func:`merge_readings` / :func:`merge_snapshots`)
-- pure functions over exported snapshots, no sockets:

* **counters sum**: the cluster served the union of the traffic, so
  ``executor.attempts`` across shards is the plain sum;
* **histograms merge bucket-wise**: all registries share the fixed
  boundary set (``DEFAULT_BUCKETS``, fixed since the bucketed
  histograms landed), so cumulative bucket counts, ``count`` and
  ``sum`` add element-wise and min/max combine -- the merged histogram
  is *exactly* the histogram a single process observing all the
  traffic would have built, quantile estimates included.  Shards whose
  boundaries disagree (a mediator with a custom SLO boundary) degrade
  honestly: count/sum/min/max still merge, the bucket detail is
  dropped and the reading is marked ``boundaries_conflict`` rather
  than silently mis-summed;
* **gauges keep per-instance identity**: "in-flight on shard 2" summed
  with "in-flight on shard 5" answers no question anyone asks, so
  gauges land in the merged view under ``instance.<name>.<metric>``
  keys -- the exposition folds that prefix into an ``instance=`` label
  (one family, one series per shard);
* exemplars survive the merge: the union of the shards' exemplars,
  largest first, re-bounded to the largest slot count seen.

**The scraper** (:class:`FederatedScraper`) -- real HTTP over the
instances' telemetry servers: one :meth:`~FederatedScraper.scrape`
pulls every ``/snapshot`` + ``/health`` (stdlib ``urllib``, bounded
timeout), merges the reachable ones and returns a :class:`ClusterView`
that degrades gracefully: an unreachable instance is *marked* (``up``
gauge 0, status ``unreachable``, last-known-good snapshot reused and
flagged ``stale`` if one exists) and the scrape succeeds with whatever
answered.  ``python -m repro.dash --cluster URL,URL,...`` renders the
view; :meth:`ClusterView.render_openmetrics` re-exports it as
OpenMetrics text with per-instance ``instance=`` labels.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.observability.exposition import render_openmetrics

#: Synthetic families the scraper adds to every merged view.
UP_METRIC = "up"
STALE_METRIC = "stale"


def instance_key(instance: str, name: str) -> str:
    """The merged-view key of one instance's instrument ``name``."""
    return f"instance.{instance}.{name}"


def _merge_conflict(kind: str, readings: Sequence[dict[str, Any]]
                    ) -> dict[str, Any]:
    """A kind clash across instances: nothing meaningful to add up."""
    return {"type": kind, "merge_conflict": True,
            "kinds": sorted({r.get("type", "?") for r in readings})}


def merge_readings(readings: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Merge one instrument's readings from N instances into one.

    Counters sum; histograms add bucket-wise (same boundaries -- see
    the module docstring for the conflict path); gauges are not meant
    to reach here (:func:`merge_snapshots` keeps them per-instance) but
    merge max-wise when fed directly.  Mixed kinds under one name are
    marked ``merge_conflict`` instead of being guessed at.
    """
    if not readings:
        raise ValueError("nothing to merge")
    kind = readings[0].get("type")
    if any(r.get("type") != kind for r in readings):
        return _merge_conflict(kind or "?", readings)
    if kind == "counter":
        return {"type": "counter",
                "value": sum(r.get("value", 0.0) for r in readings)}
    if kind == "gauge":
        return {
            "type": "gauge",
            "value": sum(r.get("value", 0.0) for r in readings),
            "max": max(r.get("max", 0.0) for r in readings),
        }
    if kind == "histogram":
        return _merge_histograms(readings)
    return _merge_conflict(kind or "?", readings)


def _merge_histograms(readings: Sequence[dict[str, Any]]
                      ) -> dict[str, Any]:
    count = sum(r.get("count", 0) for r in readings)
    total = sum(r.get("sum", 0.0) for r in readings)
    mins = [r.get("min") for r in readings if r.get("min") is not None]
    maxes = [r.get("max") for r in readings if r.get("max") is not None]
    merged: dict[str, Any] = {
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
        "mean": total / count if count else 0.0,
    }
    boundary_sets = {
        tuple(boundary for boundary, _ in r.get("buckets", []))
        for r in readings
    }
    if len(boundary_sets) != 1:
        # Shards disagree on bucket boundaries: the scalar aggregates
        # above are still exact, the bucket detail is not mergeable.
        merged["buckets"] = []
        merged["boundaries_conflict"] = True
    else:
        buckets = []
        for index, (boundary, _) in enumerate(
            readings[0].get("buckets", [])
        ):
            buckets.append([
                boundary,
                sum(r["buckets"][index][1] for r in readings),
            ])
        merged["buckets"] = buckets
    if any("exemplars" in r for r in readings):
        # The union, largest first: the exposition picks at most one
        # per bucket line, so keeping all of them costs nothing and
        # loses no shard's extreme.
        merged["exemplars"] = sorted(
            (exemplar for r in readings
             for exemplar in (r.get("exemplars") or [])),
            key=lambda e: -e[0],
        )
    return merged


def merge_snapshots(snapshots: Mapping[str, Mapping[str, dict[str, Any]]]
                    ) -> dict[str, dict[str, Any]]:
    """``instance name -> registry snapshot`` into one merged snapshot.

    Counters and histograms merge under their own names; gauges keep
    per-instance identity under ``instance.<name>.<metric>`` keys.  The
    result is registry-shaped -- any consumer of a single process's
    ``/snapshot`` (the dash, the OpenMetrics renderer, the quantile
    estimator) reads the cluster view unchanged.
    """
    merged: dict[str, dict[str, Any]] = {}
    grouped: dict[str, list[dict[str, Any]]] = {}
    for instance in sorted(snapshots):
        snapshot = snapshots[instance]
        for name in sorted(snapshot):
            reading = snapshot[name]
            if reading.get("type") == "gauge":
                merged[instance_key(instance, name)] = dict(reading)
            else:
                grouped.setdefault(name, []).append(reading)
    for name, readings in grouped.items():
        merged[name] = merge_readings(readings)
    return merged


@dataclass
class InstanceStatus:
    """One scraped instance's condition inside a :class:`ClusterView`."""

    instance: str
    url: str
    #: ``ok`` | ``degraded`` (it answered but its /health is not ok) |
    #: ``stale`` (unreachable now, last-known-good reused) |
    #: ``unreachable`` (never answered; nothing to merge).
    status: str
    health: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    #: Seconds since this instance last answered (0.0 when it answered
    #: in the scrape that built this view).
    age_seconds: float = 0.0

    @property
    def reachable(self) -> bool:
        return self.status in ("ok", "degraded")


@dataclass
class ClusterView:
    """One merged scrape of a mediator cluster."""

    instances: list[InstanceStatus]
    merged: dict[str, dict[str, Any]]
    scraped_at: float
    elapsed_seconds: float

    @property
    def status(self) -> str:
        """The cluster's one-word condition: ``ok`` only when every
        instance answered healthy."""
        if not self.instances:
            return "empty"
        if all(i.status == "ok" for i in self.instances):
            return "ok"
        if any(i.reachable for i in self.instances):
            return "degraded"
        return "unreachable"

    def health(self) -> dict[str, Any]:
        """A cluster-level health document (the federated analogue of
        one server's ``/health``)."""
        return {
            "status": self.status,
            "instances": {
                i.instance: {
                    "url": i.url,
                    "status": i.status,
                    **({"error": i.error} if i.error else {}),
                }
                for i in self.instances
            },
            "reachable": sum(1 for i in self.instances if i.reachable),
            "scraped": len(self.instances),
        }

    def render_openmetrics(self) -> str:
        """The merged view as OpenMetrics text (``instance=`` labels on
        per-instance series, courtesy of the exposition's
        ``instance.*`` folding)."""
        return render_openmetrics(self.merged)


class FederatedScraper:
    """Pulls N telemetry servers into one :class:`ClusterView`.

    ``targets`` are base URLs (``http://host:port``); each scrape GETs
    ``/health`` and ``/snapshot`` from every target with a bounded
    ``timeout``.  The scraper remembers each instance's last good
    snapshot: a target that stops answering degrades to ``stale``
    (its old numbers, marked) and finally stands as ``unreachable``
    when it never answered at all -- the cluster view never throws
    because one shard is down.  Thread-safe; one scraper may be shared
    by a watch loop and a probe.
    """

    def __init__(self, targets: Sequence[str], timeout: float = 2.0):
        if not targets:
            raise ValueError("a FederatedScraper needs at least one target")
        self.targets = [target.rstrip("/") for target in targets]
        self.timeout = timeout
        self._lock = threading.Lock()
        #: url -> (snapshot, health, monotonic time it was scraped).
        self._last_good: dict[str, tuple[dict, dict, float]] = {}
        self.scrapes = 0
        self.failures = 0

    # ------------------------------------------------------------------
    @staticmethod
    def instance_name(url: str, health: Mapping[str, Any] | None = None
                      ) -> str:
        """The label an instance's series carry: the name its server
        advertises in ``/health`` when configured, else ``host:port``."""
        if health and health.get("instance"):
            return str(health["instance"])
        stripped = url.split("://", 1)[-1].rstrip("/")
        return stripped or url

    def _fetch_json(self, url: str) -> tuple[int, Any]:
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as reply:
                return reply.status, json.loads(
                    reply.read().decode("utf-8")
                )
        except urllib.error.HTTPError as reply:
            # /health answers 503 while degraded -- the body is still
            # the document; anything non-JSON raises like a miss.
            return reply.code, json.loads(reply.read().decode("utf-8"))

    def scrape_instance(self, url: str) -> tuple[dict, dict]:
        """One target's ``(health, snapshot)`` over real HTTP (raises
        on unreachable/garbled -- :meth:`scrape` does the catching)."""
        _, health = self._fetch_json(url + "/health")
        status, snapshot = self._fetch_json(url + "/snapshot")
        if status != 200 or not isinstance(snapshot, dict):
            raise ValueError(f"bad /snapshot from {url}: HTTP {status}")
        return health, snapshot

    # ------------------------------------------------------------------
    def scrape(self) -> ClusterView:
        """Pull every target once and merge what answered."""
        started = time.perf_counter()
        statuses: list[InstanceStatus] = []
        snapshots: dict[str, dict] = {}
        with self._lock:
            self.scrapes += 1
        for url in self.targets:
            now = time.monotonic()
            try:
                health, snapshot = self.scrape_instance(url)
            except (OSError, ValueError) as exc:
                with self._lock:
                    self.failures += 1
                    remembered = self._last_good.get(url)
                if remembered is not None:
                    snapshot, health, scraped_at = remembered
                    instance = self.instance_name(url, health)
                    statuses.append(InstanceStatus(
                        instance=instance, url=url, status="stale",
                        health=health, error=str(exc),
                        age_seconds=now - scraped_at,
                    ))
                    snapshots[instance] = snapshot
                else:
                    statuses.append(InstanceStatus(
                        instance=self.instance_name(url), url=url,
                        status="unreachable", error=str(exc),
                    ))
                continue
            instance = self.instance_name(url, health)
            with self._lock:
                self._last_good[url] = (snapshot, health, now)
            statuses.append(InstanceStatus(
                instance=instance, url=url,
                status="ok" if health.get("status") == "ok" else "degraded",
                health=health,
            ))
            snapshots[instance] = snapshot
        merged = merge_snapshots(snapshots)
        for status in statuses:
            merged[instance_key(status.instance, UP_METRIC)] = {
                "type": "gauge",
                "value": 1.0 if status.reachable else 0.0,
                "max": 1.0,
            }
            merged[instance_key(status.instance, STALE_METRIC)] = {
                "type": "gauge",
                "value": 1.0 if status.status == "stale" else 0.0,
                "max": 1.0,
            }
        return ClusterView(
            instances=statuses,
            merged=merged,
            scraped_at=time.time(),
            elapsed_seconds=time.perf_counter() - started,
        )
