"""Span exporters: JSONL files, in-memory collection, tree utilities.

A trace is only useful once it leaves the process.  Two exporters:

* :class:`InMemoryCollector` -- a list-backed sink for tests and for
  the explain/timeline views (attach with ``tracer.add_exporter``);
* JSONL -- :func:`write_jsonl` / :func:`read_jsonl` round-trip every
  span **losslessly** (ids, parent links, attributes, events, status,
  recorded exceptions), one JSON object per line, append-friendly.
  :class:`JsonlExporter` streams spans to a file as they finish.

Plus the structural helpers the tests lean on: :func:`span_index`,
:func:`orphan_spans` (cross-thread parenting must never detach a
span) and :func:`tree_shape` (an order-insensitive multiset of
root-to-span name paths, for comparing a parallel run against the
serial run's tree).
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from pathlib import Path
from typing import Iterable

from repro.observability.trace import Span, SpanEvent


def span_to_dict(span: Span) -> dict:
    """A JSON-safe representation of one span (lossless)."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "trace_id": span.trace_id,
        "parent_id": span.parent_id,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "error": span.error,
        "attributes": dict(span.attributes),
        "events": [
            {"name": e.name, "timestamp": e.timestamp,
             "attributes": dict(e.attributes)}
            for e in span.events
        ],
    }


def span_from_dict(data: dict) -> Span:
    """The inverse of :func:`span_to_dict`."""
    return Span(
        name=data["name"],
        span_id=data["span_id"],
        trace_id=data["trace_id"],
        parent_id=data["parent_id"],
        start=data["start"],
        end=data["end"],
        status=data["status"],
        error=data["error"],
        attributes=dict(data["attributes"]),
        events=[
            SpanEvent(e["name"], e["timestamp"], dict(e["attributes"]))
            for e in data["events"]
        ],
    )


def write_jsonl(spans: Iterable[Span], path: str | Path) -> int:
    """Write spans to ``path``, one JSON object per line; returns count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[Span]:
    """Reload spans written by :func:`write_jsonl` / :class:`JsonlExporter`."""
    spans: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


class JsonlExporter:
    """Streams each finished span to a JSONL file (append mode).

    Attach with ``tracer.add_exporter(JsonlExporter(path))``; call
    :meth:`close` (or use as a context manager) when done.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def __call__(self, span: Span) -> None:
        self._handle.write(json.dumps(span_to_dict(span), sort_keys=True))
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class InMemoryCollector:
    """A list-backed exporter for tests: every finished span, in order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def __call__(self, span: Span) -> None:
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()


# ----------------------------------------------------------------------
# Structural helpers over exported spans.


def span_index(spans: Iterable[Span]) -> dict[int, Span]:
    return {span.span_id: span for span in spans}


def children_of(spans: Iterable[Span]) -> dict[int | None, list[Span]]:
    """Parent id -> children, each list sorted by start time."""
    by_parent: dict[int | None, list[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    for siblings in by_parent.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return by_parent


def orphan_spans(spans: Iterable[Span]) -> list[Span]:
    """Non-root spans whose parent is missing from the collection.

    An empty result means the trace is one connected forest -- the
    cross-thread parenting guarantee the parallel executor must keep.
    """
    spans = list(spans)
    index = span_index(spans)
    return [
        span for span in spans
        if span.parent_id is not None and span.parent_id not in index
    ]


def span_path(span: Span, index: dict[int, Span]) -> tuple[str, ...]:
    """Root-to-span tuple of names (the span's position in the tree)."""
    path = [span.name]
    current = span
    while current.parent_id is not None:
        current = index[current.parent_id]
        path.append(current.name)
    return tuple(reversed(path))


def tree_shape(spans: Iterable[Span]) -> _Counter:
    """Order-insensitive multiset of root-to-span name paths.

    Two runs of the same plan -- serial and parallel -- must produce
    the same shape even though siblings start in a different order.
    """
    spans = list(spans)
    index = span_index(spans)
    return _Counter(span_path(span, index) for span in spans)
