"""Joins over limited sources: connecting flights via a bind-join.

The paper confines itself to selection queries but calls them "the
building blocks of more complex queries".  This example builds one such
complex query: *SFO to BOS with one stop* over a flight source whose
form **requires** a full route (you cannot ask "everything leaving SFO
for anywhere" -- but you can ask route by route).

The bind-join runs the outer leg, then binds each layover city into a
capability-checked probe for the second leg.  Every probe goes through
GenCompact, so a probe the form cannot take is detected before anything
is sent.

Run:  python examples/connecting_flights.py
"""

from repro import bind_join, flights, parse_condition
from repro.data.generate import CITIES
from repro.query import TargetQuery


def main() -> None:
    source = flights(n=15000)
    catalog = {source.name: source}

    origin, destination = "SFO", "BOS"
    print(f"one-stop {origin} -> {destination} itineraries under $400/leg\n")

    total_queries = 0
    itineraries = []
    # The form demands origin AND destination, so the mediator enumerates
    # candidate layovers (the 1999 reality of route-required forms).
    for layover in CITIES:
        if layover in (origin, destination):
            continue
        outer = TargetQuery(
            parse_condition(
                f"origin = '{origin}' and destination = '{layover}' "
                f"and price <= 400"
            ),
            frozenset({"id", "price"}),
            "flights",
        )
        # Inner attributes must not collide with outer ones: project the
        # second leg's airline and stops (its price is bounded by the
        # probe condition).
        answer = bind_join(
            catalog,
            outer,
            "flights",
            on={"destination": "origin"},
            inner_condition=parse_condition(
                f"destination = '{destination}' and price <= 400"
            ),
            inner_attributes=frozenset({"airline", "stops"}),
        )
        total_queries += answer.outer_queries + answer.inner_queries
        for row in answer.rows:
            itineraries.append(row)

    itineraries.sort(key=lambda r: r["price"])
    print(f"{len(itineraries)} leg-pairs found with {total_queries} source queries")
    for row in itineraries[:8]:
        print(
            f"  {origin} -> {row['destination']:3s} (${row['price']:>3d}) "
            f"then {row['airline']} -> {destination}"
        )


if __name__ == "__main__":
    main()
