"""Reproduce the paper's evaluation end to end.

Runs the full reconstructed experiment suite (E1-E9; see DESIGN.md for
the index and EXPERIMENTS.md for the recorded results) and prints each
result table.  Pass ``--quick`` for smaller instances.

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys

from repro.experiments.__main__ import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
