"""Mirrors: the same listings behind two very different interfaces.

A price-comparison mediator sees the same car inventory twice: a fast
dealer site whose form takes make + price bound, and a small classified
site that only lets you download everything.  Capability-sensitive
source *selection* picks, per query, whichever interface answers
cheapest -- and fails over when a query is outside one form's reach.

Run:  python examples/price_comparison.py
"""

from repro import MirrorGroup, parse_condition
from repro.data.generate import generate_cars
from repro.plans.execute import Executor
from repro.query import TargetQuery
from repro.source.source import CapabilitySource
from repro.ssdl.builder import DescriptionBuilder


def dealer(rows) -> CapabilitySource:
    description = (
        DescriptionBuilder("dealer")
        .rule(
            "search",
            "make = $str | make = $str and price <= $num",
            attributes=["id", "make", "model", "price", "year"],
        )
        .build()
    )
    return CapabilitySource("dealer", rows, description)


def classifieds(rows) -> CapabilitySource:
    description = (
        DescriptionBuilder("classifieds")
        .rule("dump", "true",
              attributes=["id", "make", "model", "price", "year"])
        .build()
    )
    return CapabilitySource("classifieds", rows, description)


def main() -> None:
    inventory = generate_cars(n=6000)
    group = MirrorGroup(
        [dealer(inventory), classifieds(inventory)],
        # The classified site is slow: steep per-query and per-tuple cost.
        per_source_constants={"classifieds": (400.0, 3.0)},
    )

    queries = [
        ("BMWs under $35k (the dealer form nails this)",
         "make = 'BMW' and price <= 35000"),
        ("anything under $9k (no make given: only the dump site can)",
         "price <= 9000"),
        ("Hondas, any price (both can; dealer is cheaper)",
         "make = 'Honda'"),
    ]
    for label, text in queries:
        query = TargetQuery(
            parse_condition(text), frozenset({"id", "make", "price"}), "cars"
        )
        choice = group.plan(query)
        print(label)
        if not choice.feasible:
            print("  -> infeasible on every mirror\n")
            continue
        winner = choice.chosen
        print(f"  -> {winner.query.source} wins at estimated cost "
              f"{winner.cost:.0f}")
        for name, result in sorted(choice.per_source.items()):
            status = f"{result.cost:.0f}" if result.feasible else "infeasible"
            print(f"     {name:12s} {status}")
        executor = Executor({winner.query.source: group.sources[winner.query.source]})
        rows = executor.execute(winner.plan)
        print(f"     answered with {len(rows)} rows\n")


if __name__ == "__main__":
    main()
