"""Example 1.2: the car shopping guide, strategy by strategy.

The Autobytel-style form takes a single style, a single make, a price
bound and a *list* of sizes -- in a fixed field order.  The target query
("midsize or compact sedans: Toyotas under $20k, BMWs under $40k")
cannot be sent directly.  This script plans it with every strategy and
executes each feasible plan, reproducing the paper's comparison:

* DNF sends four queries (one per disjunct);
* CNF pushes only style + size list and drags everything else over;
* GenCompact finds the two-query plan the paper advocates;
* DISCO and Naive have no plan at all.

Run:  python examples/car_shopping.py
"""

from repro import (
    CNFPlanner,
    DiscoPlanner,
    DNFPlanner,
    Executor,
    GenCompact,
    GenModular,
    Mediator,
    NaivePlanner,
    car_guide,
    to_paper_notation,
)

QUERY = (
    "SELECT id, make, model, price FROM car_guide "
    "WHERE style = 'sedan' and (size = 'compact' or size = 'midsize') and "
    "((make = 'Toyota' and price <= 20000) or "
    "(make = 'BMW' and price <= 40000))"
)


def main() -> None:
    mediator = Mediator()
    source = car_guide(n=12000)
    mediator.add_source(source)
    executor = Executor(mediator.catalog)

    planners = [
        GenCompact(),
        GenModular(max_rewrites=60),
        CNFPlanner(),
        DNFPlanner(),
        DiscoPlanner(),
        NaivePlanner(),
    ]
    print(f"target query: {QUERY}\n")
    header = (
        f"{'strategy':16s} {'est cost':>10s} {'queries':>8s} "
        f"{'tuples moved':>13s} {'answer rows':>12s}"
    )
    print(header)
    print("-" * len(header))
    for planner in planners:
        result = mediator.plan(QUERY, planner)
        if not result.feasible:
            print(f"{result.planner:16s} {'infeasible':>10s}")
            continue
        source.meter.reset()
        report = executor.execute_with_report(result.plan)
        print(
            f"{result.planner:16s} {result.cost:>10.1f} {report.queries:>8d} "
            f"{report.tuples_transferred:>13d} {len(report.result):>12d}"
        )
    print()
    best = mediator.plan(QUERY)
    print("GenCompact's plan in the paper's notation:")
    print(" ", to_paper_notation(best.plan))


if __name__ == "__main__":
    main()
