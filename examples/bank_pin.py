"""The Section 4 bank: attributes gated behind input attributes.

"A bank may allow the retrieval of some attributes of an account given
its account number, but may refuse to give the account balance unless a
PIN number is specified in the query condition."

This script shows how that policy is just an SSDL attribute association,
and how planning reacts: the same projection flips between feasible and
infeasible depending on whether the condition carries the PIN.

Run:  python examples/bank_pin.py
"""

from repro import InfeasiblePlanError, Mediator, bank
from repro.query import TargetQuery
from repro.conditions import parse_condition


def main() -> None:
    mediator = Mediator()
    source = bank(n=5000)
    mediator.add_source(source)

    account = source.relation.rows[7]
    number, pin = account["account_no"], account["pin"]

    print("grammar rules of the bank source:")
    for nt in source.description.condition_nonterminals:
        attrs = ", ".join(sorted(source.description.attributes[nt]))
        print(f"  {nt:16s} exports {{{attrs}}}")
    print()

    # Without the PIN: owner and branch are fine, balance is not.
    ok = mediator.ask(
        f"SELECT owner, branch FROM bank WHERE account_no = {number}"
    )
    print(f"without PIN, owner/branch: {ok.rows}")

    try:
        mediator.ask(f"SELECT balance FROM bank WHERE account_no = {number}")
    except InfeasiblePlanError:
        print("without PIN, balance     : infeasible (as the policy demands)")

    # With the PIN in the condition, the balance unlocks.
    with_pin = mediator.ask(
        f"SELECT owner, balance FROM bank "
        f"WHERE account_no = {number} and pin = {pin}"
    )
    print(f"with PIN, owner/balance  : {with_pin.rows}")
    print()

    # The enforcement is independent of the planner: submitting the
    # unsupported query directly makes the simulated source itself refuse.
    from repro.errors import UnsupportedQueryError

    try:
        source.execute(
            parse_condition(f"account_no = {number}"), frozenset(["balance"])
        )
    except UnsupportedQueryError as exc:
        print("direct submission is refused by the source itself:")
        print(" ", exc)

    # A branch scan cannot reveal balances either, even with a PIN-like
    # condition tacked on -- there is no grammar rule for it.
    query = TargetQuery(
        parse_condition(f"branch = 'downtown' and pin = {pin}"),
        frozenset(["account_no", "balance"]),
        "bank",
    )
    result = mediator.plan(query)
    print(f"branch scan for balances : "
          f"{'feasible' if result.feasible else 'infeasible'}")


if __name__ == "__main__":
    main()
