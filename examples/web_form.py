"""Model a web form directly and let the compiler produce the SSDL.

Rather than hand-writing a grammar, describe the page: which fields it
has, in which order, what each accepts, which are required, and what the
result table shows.  The compiled description behaves exactly like a
hand-written one -- order-sensitive, Check-able, plannable.

Run:  python examples/web_form.py
"""

from repro import Mediator, CapabilitySource
from repro.data.generate import generate_books
from repro.ssdl import (
    KeywordField,
    NumberField,
    SelectField,
    TextField,
    WebForm,
)
from repro.ssdl.text import format_ssdl


def main() -> None:
    # An "advanced search" page for the bookstore:
    #   [ author ______ ] [ title keywords ______ ]
    #   [ subject: (psychology | philosophy | self-help) v ]
    #   [ max price ____ ]      (at most 3 fields may be used)
    form = WebForm(
        "advanced_search",
        fields=[
            TextField("author"),
            KeywordField("title"),
            SelectField("subject",
                        options=("psychology", "philosophy", "self-help")),
            NumberField("price", op="<="),
        ],
        exports=["id", "title", "author", "subject", "price", "year"],
        max_filled=3,
    )
    description = form.compile()
    print(f"compiled {description.rule_count()} grammar rules; first few:\n")
    for line in format_ssdl(description).splitlines()[:6]:
        print("  ", line)
    print("   ...\n")

    mediator = Mediator()
    mediator.add_source(
        CapabilitySource("books", generate_books(20000), description)
    )

    # Uses three fields -- fine.
    ok = mediator.ask(
        "SELECT title, price FROM books WHERE author = 'Carl Jung' "
        "and title contains 'symbols' and price <= 60"
    )
    print(f"3-field query: {len(ok.rows)} rows via "
          f"{ok.report.queries} source query")

    # Uses all four fields -- beyond max_filled, so the mediator must
    # split it: three fields at the source, the fourth filtered locally.
    split = mediator.ask(
        "SELECT title, price FROM books WHERE author = 'Carl Jung' "
        "and title contains 'symbols' and subject = 'psychology' "
        "and price <= 60"
    )
    print(f"4-field query: {len(split.rows)} rows -- "
          f"{split.planning.describe()}")


if __name__ == "__main__":
    main()
