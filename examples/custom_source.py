"""Describe your own source in SSDL and query it through the mediator.

Builds the paper's Section 4 examples from scratch:

1. the car source of Example 4.1, written in textual SSDL exactly as the
   paper presents it (including its order-sensitive grammar), and
2. a bank whose ``balance`` attribute is exported only when the query
   supplies a PIN -- the paper's attribute-export restriction.

Shows Check() in action, an infeasible query being rejected with a
reason, and Section 6.1's query fixing (the mediator reorders conjuncts
before talking to the order-sensitive form).

Run:  python examples/custom_source.py
"""

from repro import (
    CapabilitySource,
    InfeasiblePlanError,
    Mediator,
    parse_condition,
    parse_ssdl,
)
from repro.data import AttrType, Relation, Schema

EXAMPLE_41_SSDL = """
# Example 4.1 from the paper: R(make, model, year, color, price)
s  -> s1 | s2
s1 -> make = $m and price < $p
s2 -> make = $m and color = $c
attributes s1 : make, model, year, color
attributes s2 : make, model, year
"""

CARS = [
    {"make": "BMW", "model": "328i", "year": 1998, "color": "red", "price": 38000},
    {"make": "BMW", "model": "318i", "year": 1997, "color": "black", "price": 31000},
    {"make": "Toyota", "model": "Camry", "year": 1999, "color": "red", "price": 19000},
    {"make": "Toyota", "model": "Corolla", "year": 1996, "color": "blue", "price": 11000},
    {"make": "BMW", "model": "740il", "year": 1999, "color": "silver", "price": 62000},
]


def main() -> None:
    schema = Schema.of(
        "cars",
        [("make", AttrType.STRING), ("model", AttrType.STRING),
         ("year", AttrType.INT), ("color", AttrType.STRING),
         ("price", AttrType.INT)],
    )
    description = parse_ssdl(EXAMPLE_41_SSDL, name="example41")
    source = CapabilitySource("cars", Relation(schema, CARS), description)

    # --- Check() in action -------------------------------------------------
    for text in (
        "make = 'BMW' and price < 40000",
        "make = 'BMW' and color = 'red'",
        "color = 'red' and make = 'BMW'",   # wrong order for the form
        "year = 1999",                       # no form field for year
    ):
        condition = parse_condition(text)
        result = source.description.check(condition)   # native, order-sensitive
        closed = source.check(condition)               # commutation-closed
        print(f"Check({text!r})")
        print(f"  native grammar : {sorted(map(sorted, result.attribute_sets))}")
        print(f"  order-fixed    : {sorted(map(sorted, closed.attribute_sets))}")
    print()

    # --- Planning against the limited source -------------------------------
    mediator = Mediator()
    mediator.add_source(source)

    answer = mediator.ask(
        "SELECT model, year FROM cars "
        "WHERE price < 40000 and color = 'red' and make = 'BMW'"
    )
    print("query   : red BMWs under $40k (note: not in the form's order)")
    print("plan    :", answer.planning.describe())
    print("answer  :", answer.rows)
    print()

    # The paper's infeasible case: asking for `color` through the s2 form.
    try:
        mediator.ask("SELECT color FROM cars WHERE make = 'BMW' and color = 'red'")
    except InfeasiblePlanError as exc:
        print("as the paper notes, s2 cannot export color:")
        print(" ", exc)


if __name__ == "__main__":
    main()
