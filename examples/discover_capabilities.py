"""Discover a source's SSDL description by probing it.

The paper assumes the source description exists; this example shows one
being *learned*.  We treat the Example 4.1 car source as a black box
(only its `execute` endpoint, which rejects unsupported queries), send
probe queries, and synthesize a description from what was accepted --
including the form's order sensitivity and its export restrictions.
The inferred description then drives real planning.

Run:  python examples/discover_capabilities.py
"""

from repro import CapabilitySource, Mediator, parse_condition, parse_ssdl
from repro.data import AttrType, Relation, Schema
from repro.ssdl import discover_description
from repro.ssdl.text import format_ssdl

EXAMPLE_41_SSDL = """
s  -> s1 | s2
s1 -> make = $m and price < $p
s2 -> make = $m and color = $c
attributes s1 : make, model, year, color
attributes s2 : make, model, year
"""

CARS = [
    {"make": "BMW", "model": "328i", "year": 1998, "color": "red", "price": 38000},
    {"make": "BMW", "model": "318i", "year": 1997, "color": "black", "price": 31000},
    {"make": "Toyota", "model": "Camry", "year": 1999, "color": "red", "price": 19000},
    {"make": "Honda", "model": "Accord", "year": 1997, "color": "black", "price": 17000},
]


def main() -> None:
    schema = Schema.of(
        "cars",
        [("make", AttrType.STRING), ("model", AttrType.STRING),
         ("year", AttrType.INT), ("color", AttrType.STRING),
         ("price", AttrType.INT)],
    )
    black_box = CapabilitySource(
        "cars", Relation(schema, CARS), parse_ssdl(EXAMPLE_41_SSDL)
    )

    report = discover_description(
        black_box,
        schema,
        samples={
            "make": ("BMW", "Toyota"),
            "color": ("red", "black"),
            "price": (20000, 35000),
            "year": (1998, 1999),
        },
    )
    print(f"sent {report.probes_sent} probes "
          f"({report.probes_accepted} accepted, "
          f"{report.tuples_transferred} tuples transferred)\n")
    print("inferred description:")
    for line in format_ssdl(report.description).splitlines():
        print("  ", line)
    print()

    # Sanity: the learned grammar is order-sensitive like the form.
    for text in ("make = 'VW' and color = 'blue'",
                 "color = 'blue' and make = 'VW'"):
        verdict = "accepted" if report.description.check(parse_condition(text)) \
            else "rejected"
        print(f"  {text:38s} -> {verdict}")
    print()

    # Plan against the learned description; execute against the real form.
    mediator = Mediator()
    mediator.add_source(
        CapabilitySource("cars", black_box.relation, report.description)
    )
    answer = mediator.ask(
        "SELECT model, year FROM cars "
        "WHERE price < 40000 and color = 'red' and make = 'BMW'"
    )
    print("planned with the inferred description:")
    print(" ", answer.planning.describe())
    print("  rows:", answer.rows)


if __name__ == "__main__":
    main()
