"""Quickstart: plan and run a capability-sensitive query in ten lines.

This is the paper's Example 1.1: find books by Sigmund Freud *or* Carl
Jung about dreams, on a bookstore whose search form cannot take two
authors at once.  GenCompact splits the query into two supported
searches and unions the results at the mediator.

Run:  python examples/quickstart.py
"""

from repro import Mediator, bookstore, explain

QUERY = (
    "SELECT title, author, price FROM bookstore "
    "WHERE (author = 'Sigmund Freud' or author = 'Carl Jung') "
    "and title contains 'dreams'"
)


def main() -> None:
    mediator = Mediator()
    mediator.add_source(bookstore(n=20000))

    answer = mediator.ask(QUERY)

    print("target query :", answer.query)
    print("plan cost    :", f"{answer.planning.cost:.1f} (estimated, Eq. 1)")
    print("chosen plan  :")
    print(explain(answer.planning.plan, mediator.cost_model()))
    print()
    print(
        f"executed with {answer.report.queries} source queries, "
        f"{answer.report.tuples_transferred} tuples transferred"
    )
    print(f"{len(answer.rows)} answer rows; first five:")
    for row in sorted(answer.rows, key=lambda r: r["title"])[:5]:
        print(f"  {row['author']:18s} {row['title']:38s} ${row['price']:.2f}")


if __name__ == "__main__":
    main()
